// Scripted-context unit tests for the application layer: message
// dispatch between app and inner election, and the exact app rounds.
#include <gtest/gtest.h>

#include "celect/apps/broadcast.h"
#include "celect/apps/global_function.h"
#include "celect/apps/spanning_tree.h"
#include "mock_context.h"

namespace celect::apps {
namespace {

using sim::Id;
using sim::Port;
using test::MockContext;
using wire::Packet;

// Minimal inner election: declares leader as soon as it wakes; records
// the protocol traffic it sees.
class InstantWinner : public sim::Process {
 public:
  void OnWakeup(sim::Context& ctx) override { ctx.DeclareLeader(); }
  void OnMessage(sim::Context&, Port, const wire::Packet& p) override {
    seen.push_back(p.type);
  }
  std::vector<std::uint16_t> seen;
};

TEST(AppBaseUnit, ProtocolTrafficPassesThroughToInner) {
  auto inner = std::make_unique<InstantWinner>();
  auto* inner_view = inner.get();
  SpanningTreeProcess app(std::move(inner));
  MockContext ctx(1, 2, 8);
  // A low-typed packet is election traffic: forwarded to the inner
  // process untouched.
  app.OnMessage(ctx, 3, Packet{42, {7}});
  ASSERT_EQ(inner_view->seen.size(), 1u);
  EXPECT_EQ(inner_view->seen[0], 42);
  EXPECT_EQ(ctx.sent_count(), 0u);
}

TEST(AppBaseUnit, AppTrafficNeverReachesInner) {
  auto inner = std::make_unique<InstantWinner>();
  auto* inner_view = inner.get();
  SpanningTreeProcess app(std::move(inner));
  MockContext ctx(1, 2, 8);
  app.OnMessage(ctx, 3, Packet{kTreeInvite, {9}});
  EXPECT_TRUE(inner_view->seen.empty());
}

TEST(SpanningTreeUnit, ElectionTriggersInviteWave) {
  SpanningTreeProcess app(std::make_unique<InstantWinner>());
  MockContext ctx(0, 5, 8);
  app.OnWakeup(ctx);  // inner declares instantly -> app invites everyone
  EXPECT_EQ(ctx.leader_declarations(), 1u);
  EXPECT_EQ(ctx.OfType(kTreeInvite).size(), 7u);
  EXPECT_TRUE(app.is_root());
  EXPECT_EQ(app.root_id(), Id{5});
}

TEST(SpanningTreeUnit, FirstInviteWinsParentEdge) {
  SpanningTreeProcess app(std::make_unique<InstantWinner>());
  MockContext ctx(2, 3, 8);
  app.OnMessage(ctx, 4, Packet{kTreeInvite, {9}});
  ASSERT_TRUE(app.parent_port().has_value());
  EXPECT_EQ(*app.parent_port(), 4u);
  EXPECT_EQ(ctx.single().packet.type, kTreeJoin);
  ctx.ClearSent();
  // A second invite does not re-parent and is not joined.
  app.OnMessage(ctx, 6, Packet{kTreeInvite, {11}});
  EXPECT_EQ(*app.parent_port(), 4u);
  EXPECT_EQ(app.root_id(), Id{9});
  EXPECT_EQ(ctx.sent_count(), 0u);
}

TEST(SpanningTreeUnit, RootCountsJoins) {
  SpanningTreeProcess app(std::make_unique<InstantWinner>());
  MockContext ctx(0, 5, 4);
  app.OnWakeup(ctx);
  for (Port p = 1; p <= 3; ++p) {
    app.OnMessage(ctx, p, Packet{kTreeJoin, {}});
  }
  EXPECT_EQ(app.children(), 3u);
}

TEST(BroadcastUnit, LeaderDisseminatesAndCollectsAcks) {
  BroadcastProcess app(std::make_unique<InstantWinner>(), 777);
  MockContext ctx(0, 5, 4);
  app.OnWakeup(ctx);
  auto values = ctx.OfType(kBcastValue);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].packet.field(0), 777);
  EXPECT_EQ(app.delivered(), 777);
  EXPECT_FALSE(app.feedback_complete());
  for (Port p = 1; p <= 3; ++p) {
    app.OnMessage(ctx, p, Packet{kBcastAck, {}});
  }
  EXPECT_TRUE(app.feedback_complete());
}

TEST(BroadcastUnit, ReceiverTakesFirstValueOnly) {
  BroadcastProcess app(std::make_unique<InstantWinner>(), 1);
  MockContext ctx(2, 3, 4);
  app.OnMessage(ctx, 1, Packet{kBcastValue, {10}});
  EXPECT_EQ(app.delivered(), 10);
  EXPECT_EQ(ctx.single().packet.type, kBcastAck);
  ctx.ClearSent();
  app.OnMessage(ctx, 2, Packet{kBcastValue, {20}});
  EXPECT_EQ(app.delivered(), 10);  // first delivery sticks
  EXPECT_EQ(ctx.sent_count(), 0u);
}

TEST(GlobalFunctionUnit, LeaderQueriesReducesAndDisseminates) {
  GlobalFunctionProcess app(std::make_unique<InstantWinner>(), 5,
                            MaxReducer());
  MockContext ctx(0, 9, 4);
  app.OnWakeup(ctx);
  EXPECT_EQ(ctx.OfType(kFnQuery).size(), 3u);
  ctx.ClearSent();
  app.OnMessage(ctx, 1, Packet{kFnReport, {3}});
  app.OnMessage(ctx, 2, Packet{kFnReport, {42}});
  EXPECT_FALSE(app.result().has_value());
  app.OnMessage(ctx, 3, Packet{kFnReport, {7}});
  ASSERT_TRUE(app.result().has_value());
  EXPECT_EQ(*app.result(), 42);  // max(5, 3, 42, 7)
  auto results = ctx.OfType(kFnResult);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].packet.field(0), 42);
}

TEST(GlobalFunctionUnit, NonLeaderAnswersQueryAndStoresResult) {
  GlobalFunctionProcess app(std::make_unique<InstantWinner>(), 13,
                            SumReducer());
  MockContext ctx(2, 3, 4);
  app.OnMessage(ctx, 1, Packet{kFnQuery, {}});
  EXPECT_EQ(ctx.single().packet.type, kFnReport);
  EXPECT_EQ(ctx.single().packet.field(0), 13);
  app.OnMessage(ctx, 1, Packet{kFnResult, {99}});
  EXPECT_EQ(app.result(), 99);
}

TEST(GlobalFunctionUnit, Reducers) {
  EXPECT_EQ(MaxReducer()(3, 9), 9);
  EXPECT_EQ(MaxReducer()(-3, -9), -3);
  EXPECT_EQ(SumReducer()(3, 9), 12);
}

}  // namespace
}  // namespace celect::apps
