#include "celect/sim/sync_runtime.h"

#include <gtest/gtest.h>

#include <memory>

#include "celect/proto/nosod/ag85_sync.h"
#include "celect/sim/network.h"
#include "celect/topo/ring_math.h"

namespace celect::sim {
namespace {

// Round 0: node 0 sends a token to port 1; each receiver forwards it to
// its port 1 until it has hopped N times.
class TokenRelay : public SyncProcess {
 public:
  explicit TokenRelay(const SyncProcessInit& init)
      : address_(init.address), n_(init.n) {}

  void OnRound(SyncContext& ctx,
               const std::vector<std::pair<Port, wire::Packet>>& inbox)
      override {
    if (ctx.round() == 0 && address_ == 0) {
      ctx.Send(1, wire::Packet{1, {1}});
      return;
    }
    for (const auto& [port, p] : inbox) {
      std::int64_t hops = p.field(0);
      if (hops < static_cast<std::int64_t>(n_)) {
        ctx.Send(1, wire::Packet{1, {hops + 1}});
      } else {
        ctx.DeclareLeader();  // marker for "token went all the way round"
      }
    }
  }

 private:
  NodeId address_;
  std::uint32_t n_;
};

TEST(SyncRuntime, TokenTakesNRounds) {
  const std::uint32_t n = 8;
  SyncRuntime rt(n, IdentitiesAscending(n), MakeSodMapper(n),
                 [](const SyncProcessInit& init) {
                   return std::make_unique<TokenRelay>(init);
                 });
  auto r = rt.Run();
  EXPECT_EQ(r.leader_declarations, 1u);
  EXPECT_EQ(r.total_messages, n);
  // One round per hop plus the final (quiescent) round.
  EXPECT_GE(r.rounds, n);
}

TEST(Ag85Sync, ElectsUniqueMaxId) {
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 64u}) {
    SyncRuntime rt(n, IdentitiesAscending(n), MakeRandomMapper(n, n),
                   proto::nosod::MakeAg85Sync());
    auto r = rt.Run();
    EXPECT_EQ(r.leader_declarations, 1u) << "n=" << n;
    ASSERT_TRUE(r.leader_id.has_value());
  }
}

TEST(Ag85Sync, RoundsAreLogarithmic) {
  // Doubling with reply round-trips: about 2·log2(N) + O(1) rounds.
  for (std::uint32_t n : {16u, 64u, 256u}) {
    SyncRuntime rt(n, IdentitiesAscending(n), MakeRandomMapper(n, 3 * n),
                   proto::nosod::MakeAg85Sync());
    auto r = rt.Run();
    double log_n = topo::RingMath::FloorLog2(n);
    EXPECT_LE(r.rounds, 4 * log_n + 8) << "n=" << n;
  }
}

TEST(Ag85Sync, MessagesAreNLogNish) {
  const std::uint32_t n = 128;
  SyncRuntime rt(n, IdentitiesAscending(n), MakeRandomMapper(n, 5),
                 proto::nosod::MakeAg85Sync());
  auto r = rt.Run();
  double bound = 2.0 * n * (topo::RingMath::FloorLog2(n) + 1) * 2;
  EXPECT_LE(r.total_messages, bound);
}

TEST(Ag85Sync, RandomIdentityPlacement) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::uint32_t n = 32;
    SyncRuntime rt(n, IdentitiesRandom(n, rng),
                   MakeRandomMapper(n, 100 + trial),
                   proto::nosod::MakeAg85Sync());
    auto r = rt.Run();
    EXPECT_EQ(r.leader_declarations, 1u) << "trial " << trial;
  }
}

}  // namespace
}  // namespace celect::sim
