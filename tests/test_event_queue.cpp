// Ladder-queue specifics: tombstone accounting, arena reuse across chunk
// boundaries, far-horizon drains, and a randomized differential check
// against the reference binary heap. The basic ordering contract
// (time, then insertion order) is covered in test_sim_core.cpp; these
// tests pin the parts the ladder rework added.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "celect/sim/event_queue.h"
#include "celect/sim/heap_event_queue.h"
#include "celect/util/rng.h"

namespace celect::sim {
namespace {

Time T(double units) { return Time::FromDouble(units); }

TEST(EventQueueTombstones, CancelledEventLeavesSizeButStillPops) {
  EventQueue q;
  q.Push(T(1.0), WakeupEvent{0});
  EventTicket t = q.PushTicketed(T(2.0), TimerEvent{0, 7});
  EXPECT_EQ(q.Size(), 2u);

  q.Cancel(t);
  // Live accounting excludes the tombstone...
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.Tombstones(), 1u);
  EXPECT_FALSE(q.Empty());

  // ...but the event still pops in order, exactly like the reference
  // heap, so event counts and fingerprints are unchanged.
  auto a = q.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->at, T(1.0));
  auto b = q.Pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->at, T(2.0));
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Tombstones(), 0u);
}

TEST(EventQueueTombstones, PeekTimeSkipsCancelledEarliest) {
  EventQueue q;
  EventTicket first = q.PushTicketed(T(1.0), TimerEvent{0, 1});
  q.Push(T(5.0), WakeupEvent{1});
  q.Cancel(first);
  // The earliest *live* event defines the horizon; the cancelled timer
  // no longer pins PeekTime at 1.0.
  EXPECT_EQ(q.PeekTime(), T(5.0));
}

TEST(EventQueueTombstones, FarFutureCancelDoesNotHoldTheHorizon) {
  EventQueue q;
  q.Push(T(1.0), WakeupEvent{0});
  // Far beyond the wheel horizon (the far-heap region).
  EventTicket lease = q.PushTicketed(T(100000.0), TimerEvent{3, 9});
  q.Cancel(lease);
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.PeekTime(), T(1.0));
}

TEST(EventQueueTombstones, CancelAfterPopIsANoOp) {
  EventQueue q;
  EventTicket t = q.PushTicketed(T(1.0), TimerEvent{0, 1});
  ASSERT_TRUE(q.Pop().has_value());
  q.Cancel(t);  // slot already freed; must not corrupt accounting
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Tombstones(), 0u);

  // The freed slot is reused by the next push; the stale ticket must not
  // kill the new occupant.
  q.Push(T(2.0), WakeupEvent{1});
  q.Cancel(t);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueue, ArenaSurvivesChunkBoundariesAndReuse) {
  EventQueue q;
  // Well past the first arena chunk (1024 slots).
  constexpr int kCount = 5000;
  for (int i = 0; i < kCount; ++i) {
    q.Push(T(0.001 * i), WakeupEvent{static_cast<NodeId>(i)});
  }
  for (int i = 0; i < kCount; ++i) {
    auto e = q.Pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(std::get<WakeupEvent>(e->body).node,
              static_cast<NodeId>(i));
  }
  EXPECT_TRUE(q.Empty());

  // Freed slots recycle: push another wave through the same queue.
  for (int i = 0; i < kCount; ++i) {
    q.Push(T(1000.0 + 0.001 * i), WakeupEvent{static_cast<NodeId>(i)});
  }
  for (int i = 0; i < kCount; ++i) {
    auto e = q.Pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(std::get<WakeupEvent>(e->body).node,
              static_cast<NodeId>(i));
  }
}

TEST(EventQueue, FarDrainPreservesSameInstantSeqOrder) {
  EventQueue q;
  // Same instant, far beyond the wheel horizon: these sit in the far
  // heap and drain into one L0 bucket when serving reaches their block.
  const Time far = T(50000.0);
  for (NodeId i = 0; i < 64; ++i) q.Push(far, WakeupEvent{i});
  q.Push(T(0.5), WakeupEvent{1000});
  ASSERT_TRUE(q.Pop().has_value());  // the near event first
  for (NodeId i = 0; i < 64; ++i) {
    auto e = q.Pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(std::get<WakeupEvent>(e->body).node, i) << "push order broken";
  }
}

TEST(EventQueue, TakeRemovesBySeqAndKeepsOrder) {
  EventQueue q;
  std::uint64_t s0 = q.Push(T(1.0), WakeupEvent{0});
  std::uint64_t s1 = q.Push(T(2.0), WakeupEvent{1});
  std::uint64_t s2 = q.Push(T(3.0), WakeupEvent{2});
  (void)s0;
  Event mid = q.Take(s1);
  EXPECT_EQ(std::get<WakeupEvent>(mid.body).node, 1u);
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(std::get<WakeupEvent>(q.Pop()->body).node, 0u);
  EXPECT_EQ(std::get<WakeupEvent>(q.Pop()->body).node, 2u);
  (void)s2;
}

// Differential test: random pushes (near, wheel-horizon, and far times),
// random ticketed cancels, and interleaved pops must match the reference
// binary heap event for event. The heap has no tombstones, so cancelled
// events are tracked outside and skipped on its side.
TEST(EventQueue, RandomizedDifferentialAgainstReferenceHeap) {
  Rng rng(20260807);
  EventQueue ladder;
  HeapEventQueue heap;
  std::vector<EventTicket> cancellable;
  std::uint64_t time_floor = 0;  // popped times never go backwards

  auto random_time = [&]() {
    // Mix of same-tick bursts, in-wheel, and far-heap targets.
    std::uint64_t span;
    switch (rng.NextBelow(4)) {
      case 0: span = 8; break;                   // same/near tick
      case 1: span = 1 << 12; break;             // current block
      case 2: span = std::uint64_t{1} << 23; break;  // inside the wheel
      default: span = std::uint64_t{1} << 30; break;  // far heap
    }
    return Time::FromTicks(
        static_cast<std::int64_t>(time_floor + rng.NextBelow(span)));
  };

  for (int round = 0; round < 20000; ++round) {
    const std::uint32_t op = rng.NextBelow(10);
    if (op < 5) {  // push
      const Time at = random_time();
      const NodeId node = static_cast<NodeId>(round);
      EventTicket t = ladder.PushTicketed(at, WakeupEvent{node});
      heap.Push(at, WakeupEvent{node});
      if (rng.NextBelow(4) == 0) cancellable.push_back(t);
    } else if (op < 6 && !cancellable.empty()) {  // cancel a random timer
      const std::size_t pick = rng.NextBelow(cancellable.size());
      ladder.Cancel(cancellable[pick]);
      cancellable.erase(cancellable.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      // The reference heap has no cancellation; the tombstone still pops
      // on the ladder side, so the pop streams stay aligned.
    } else {  // pop
      auto a = ladder.Pop();
      auto b = heap.Pop();
      ASSERT_EQ(a.has_value(), b.has_value()) << "round " << round;
      if (!a) continue;
      ASSERT_EQ(a->at, b->at) << "round " << round;
      ASSERT_EQ(a->seq, b->seq) << "round " << round;
      time_floor = static_cast<std::uint64_t>(a->at.ticks());
    }
  }
  // Drain both and compare the tails.
  for (;;) {
    auto a = ladder.Pop();
    auto b = heap.Pop();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    ASSERT_EQ(a->at, b->at);
    ASSERT_EQ(a->seq, b->seq);
  }
}

}  // namespace
}  // namespace celect::sim
