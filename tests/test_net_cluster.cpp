// End-to-end elections over the net/ transports: n PeerNodes hosting
// the fault-tolerant engine over SimNet with chaos links and scripted
// kill/restart, asserting termination with one agreed leader and
// bit-identical fingerprints across reruns. A UDP loopback smoke test
// covers the socket path (skipped if binding fails in the sandbox).
#include <gtest/gtest.h>

#include "celect/net/cluster.h"
#include "celect/proto/nosod/fault_tolerant.h"

namespace celect::net {
namespace {

using proto::nosod::MakeFaultTolerant;

TEST(NetCluster, CleanElectionAgreesAndIsDeterministic) {
  ClusterConfig config;
  config.n = 8;
  config.seed = 21;
  ClusterResult first = RunSimElection(config, MakeFaultTolerant(1));
  ASSERT_TRUE(first.agreed);
  EXPECT_NE(first.leader, 0);
  EXPECT_GT(first.delivered, 0u);

  ClusterResult second = RunSimElection(config, MakeFaultTolerant(1));
  EXPECT_EQ(second.agreed, first.agreed);
  EXPECT_EQ(second.leader, first.leader);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  EXPECT_EQ(second.elapsed_us, first.elapsed_us);
  EXPECT_EQ(second.datagrams, first.datagrams);
}

TEST(NetCluster, SeedSteersTheElection) {
  ClusterConfig a;
  a.n = 8;
  a.seed = 1;
  ClusterConfig b = a;
  b.seed = 2;
  ClusterResult ra = RunSimElection(a, MakeFaultTolerant(1));
  ClusterResult rb = RunSimElection(b, MakeFaultTolerant(1));
  ASSERT_TRUE(ra.agreed);
  ASSERT_TRUE(rb.agreed);
  EXPECT_NE(ra.fingerprint, rb.fingerprint);
}

TEST(NetCluster, ElectionSurvivesLossyReorderingLinks) {
  ClusterConfig config;
  config.n = 12;
  config.seed = 7;
  config.link.loss = 0.10;
  config.link.duplicate = 0.05;
  config.link.reorder = 0.15;
  config.link.corrupt = 0.01;
  ClusterResult result = RunSimElection(config, MakeFaultTolerant(1));
  ASSERT_TRUE(result.agreed) << "election wedged under chaos links";
  EXPECT_NE(result.leader, 0);
  EXPECT_GT(result.retransmits, 0u)
      << "10% loss must have forced retransmissions";
}

TEST(NetCluster, KillAndRestartMidElectionStillAgrees) {
  ClusterConfig config;
  config.n = 8;
  config.seed = 5;
  config.link.loss = 0.05;
  config.chaos = {
      {40'000, 2, ChaosEvent::What::kKill},
      {90'000, 5, ChaosEvent::What::kKill},
      {400'000, 2, ChaosEvent::What::kRestart},
      {700'000, 5, ChaosEvent::What::kRestart},
  };
  ClusterResult first = RunSimElection(config, MakeFaultTolerant(2));
  ASSERT_TRUE(first.agreed)
      << "two kills within the f=2 budget must not block termination";
  EXPECT_NE(first.leader, 0);

  // Chaos is part of the deterministic schedule: reruns are identical.
  ClusterResult second = RunSimElection(config, MakeFaultTolerant(2));
  EXPECT_EQ(second.leader, first.leader);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  EXPECT_EQ(second.elapsed_us, first.elapsed_us);
}

TEST(NetCluster, DeadPeerRaisesSuspicionsAndElectionCompletes) {
  // A node dies early and never comes back. Retransmit exhaustion must
  // surface as suspicion events (which the FT engine converts into an
  // immediate capture retry), and the live nodes must still agree.
  ClusterConfig config;
  config.n = 8;
  config.seed = 3;
  config.session.rto_initial = 1'000;
  config.session.max_retries = 1;
  config.chaos = {{4'000, 1, ChaosEvent::What::kKill}};
  ClusterResult result = RunSimElection(config, MakeFaultTolerant(1));
  ASSERT_TRUE(result.agreed);
  EXPECT_GT(result.suspicions, 0u)
      << "talking to a dead peer must exhaust retransmits into suspicion";
}

TEST(NetCluster, RestartedPeerIsDetectedViaEpochChange) {
  ClusterConfig config;
  config.n = 6;
  config.seed = 11;
  // Early kill + quick revival: the election is still in flight, so the
  // peers' live sessions meet the new incarnation's epoch directly.
  config.chaos = {
      {5'000, 0, ChaosEvent::What::kKill},
      {20'000, 0, ChaosEvent::What::kRestart},
  };
  ClusterResult result = RunSimElection(config, MakeFaultTolerant(1));
  ASSERT_TRUE(result.agreed);
  EXPECT_GT(result.peer_restarts, 0u)
      << "the revived node's fresh epoch must be noticed by its peers";
}

TEST(NetCluster, UdpLoopbackElectionSmoke) {
  // Real sockets over 127.0.0.1, one transport per node inside this
  // process. Skipped (not failed) where the sandbox forbids binding.
  ClusterConfig config;
  config.n = 4;
  config.seed = 9;
  config.base_port = 48211;
  config.deadline_us = 30'000'000;
  auto result = RunUdpElection(config, MakeFaultTolerant(1));
  if (!result.has_value()) {
    GTEST_SKIP() << "cannot bind localhost UDP ports in this environment";
  }
  EXPECT_TRUE(result->agreed);
  EXPECT_NE(result->leader, 0);
}

}  // namespace
}  // namespace celect::net
