#include "celect/util/feistel.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace celect {
namespace {

class FeistelDomainTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeistelDomainTest, IsBijection) {
  const std::uint64_t domain = GetParam();
  FeistelPermutation perm(domain, /*key=*/0xabcdef);
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < domain; ++x) {
    std::uint64_t y = perm.Encrypt(x);
    ASSERT_LT(y, domain);
    ASSERT_TRUE(seen.insert(y).second) << "collision at x=" << x;
  }
  EXPECT_EQ(seen.size(), domain);
}

TEST_P(FeistelDomainTest, DecryptInvertsEncrypt) {
  const std::uint64_t domain = GetParam();
  FeistelPermutation perm(domain, /*key=*/0x1234);
  for (std::uint64_t x = 0; x < domain; ++x) {
    EXPECT_EQ(perm.Decrypt(perm.Encrypt(x)), x);
    EXPECT_EQ(perm.Encrypt(perm.Decrypt(x)), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, FeistelDomainTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                                           63, 100, 255, 257, 1000, 4095));

TEST(Feistel, DifferentKeysGiveDifferentPermutations) {
  FeistelPermutation a(1000, 1), b(1000, 2);
  int same = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    if (a.Encrypt(x) == b.Encrypt(x)) ++same;
  }
  // A random permutation pair agrees in ~1 position on average.
  EXPECT_LT(same, 20);
}

TEST(Feistel, DeterministicAcrossInstances) {
  FeistelPermutation a(500, 99), b(500, 99);
  for (std::uint64_t x = 0; x < 500; ++x) {
    EXPECT_EQ(a.Encrypt(x), b.Encrypt(x));
  }
}

TEST(Feistel, LargeDomainSpotChecks) {
  const std::uint64_t domain = 1ull << 20;
  FeistelPermutation perm(domain, 7);
  for (std::uint64_t x = 0; x < domain; x += 7919) {
    std::uint64_t y = perm.Encrypt(x);
    ASSERT_LT(y, domain);
    EXPECT_EQ(perm.Decrypt(y), x);
  }
}

TEST(Feistel, OutputLooksScrambled) {
  FeistelPermutation perm(4096, 5);
  // Not a statistical test — just catches identity-like degenerate
  // permutations.
  int fixed_points = 0;
  for (std::uint64_t x = 0; x < 4096; ++x) {
    if (perm.Encrypt(x) == x) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 30);
}

}  // namespace
}  // namespace celect
