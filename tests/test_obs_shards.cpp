// Cross-process observability tests: the flight recorder ring, metrics
// registry wire form, shard serialize/parse round trips, the
// order-independent reducer, CheckShards semantics (including the
// SIGKILL flush-gap tolerance), and the end-to-end sim pipeline —
// traced elections whose merged shard file and merged Perfetto timeline
// are bit-identical per seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "celect/net/cluster.h"
#include "celect/obs/shard.h"
#include "celect/obs/trace_export.h"
#include "celect/proto/nosod/fault_tolerant.h"

namespace celect::obs {
namespace {

using net::ChaosEvent;
using net::ClusterConfig;
using net::ClusterResult;
using proto::nosod::MakeFaultTolerant;

TEST(FlightRecorderTest, KeepsNewestEventsWhenFull) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.Note(i, static_cast<std::uint32_t>(i), FlightKind::kRetransmit, i);
  }
  EXPECT_EQ(rec.seen(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  auto snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest retained first: events 6..9.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].at, 6 + i);
    EXPECT_EQ(snap[i].a, 6 + i);
  }
}

TEST(FlightRecorderTest, PartialFillSnapshotsInOrder) {
  FlightRecorder rec(8);
  rec.Note(1, 2, FlightKind::kSessionStart, 42);
  rec.Note(5, 3, FlightKind::kSuspectBegin, 2);
  EXPECT_EQ(rec.dropped(), 0u);
  auto snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].kind, FlightKind::kSessionStart);
  EXPECT_EQ(snap[1].kind, FlightKind::kSuspectBegin);
}

TEST(MetricsRegistryTest, CompactRoundTrip) {
  MetricsRegistry m;
  m.AddCounter("net.delivered", 123);
  m.AddCounter("proto.f.broadcasters", 1);
  Histogram h;
  h.Add(3);
  h.Add(900);
  m.MergeHistogram("rtt_us", h);
  std::string wire = m.SerializeCompact();
  EXPECT_NE(wire.find("c:"), std::string::npos) << wire;
  EXPECT_NE(wire.find(" h:"), std::string::npos) << wire;
  auto back = MetricsRegistry::ParseCompact(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(MetricsRegistryTest, EmptyRegistrySerializesToDash) {
  MetricsRegistry m;
  EXPECT_EQ(m.SerializeCompact(), "-");
  auto back = MetricsRegistry::ParseCompact("-");
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->Empty());
}

TEST(MetricsRegistryTest, MergeIsCommutative) {
  MetricsRegistry a, b;
  a.AddCounter("x", 1);
  Histogram ha;
  ha.Add(10);
  a.MergeHistogram("h", ha);
  b.AddCounter("x", 2);
  b.AddCounter("y", 5);
  Histogram hb;
  hb.Add(1000);
  b.MergeHistogram("h", hb);
  MetricsRegistry ab = a;
  ab.MergeFrom(b);
  MetricsRegistry ba = b;
  ba.MergeFrom(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.counters().at("x"), 3u);
}

TraceShard SampleShard(std::uint32_t node, std::uint64_t epoch,
                       std::size_t records) {
  TraceShard s;
  s.node = node;
  s.epoch = epoch;
  s.complete = true;
  s.label = "id=" + std::to_string(1001 + node);
  for (std::size_t i = 0; i < records; ++i) {
    sim::TraceRecord r{};
    r.kind = sim::TraceRecord::Kind::kSend;
    r.at = sim::Time::FromTicks(static_cast<std::int64_t>(i) * 100);
    r.node = node;
    r.peer = node + 1;
    r.port = 1;
    r.type = 9;
    r.seq = i;
    r.clock = i + 1;
    r.mid = (std::uint64_t{epoch} << 20) + i + 1;
    s.records.push_back(r);
  }
  s.flight.push_back(FlightEvent{7, node + 1, FlightKind::kSessionStart,
                                 epoch, 0});
  s.metrics.AddCounter("net.delivered", records);
  return s;
}

TEST(TraceShardTest, SerializeParseRoundTrip) {
  TraceShard s = SampleShard(3, 77, 5);
  s.complete = false;
  s.dropped = 2;
  s.label = "id=1004 run=a b";  // label may contain spaces
  std::string text = SerializeShard(s);
  std::string error;
  auto parsed = ParseShards(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 1u);
  const TraceShard& p = (*parsed)[0];
  EXPECT_EQ(p.node, s.node);
  EXPECT_EQ(p.epoch, s.epoch);
  EXPECT_EQ(p.complete, s.complete);
  EXPECT_EQ(p.dropped, s.dropped);
  EXPECT_EQ(p.label, s.label);
  EXPECT_EQ(p.flight, s.flight);
  EXPECT_EQ(p.metrics, s.metrics);
  ASSERT_EQ(p.records.size(), s.records.size());
  EXPECT_EQ(SerializeShard(p), text);
}

TEST(TraceShardTest, ParseRejectsTruncatedShard) {
  std::string text = SerializeShard(SampleShard(0, 1, 3));
  // Drop the "#end shard" terminator: a half-written file must not
  // silently parse as a complete shard.
  text.resize(text.rfind("#end shard"));
  std::string error;
  EXPECT_FALSE(ParseShards(text, &error).has_value());
  EXPECT_NE(error.find("shard"), std::string::npos) << error;
}

TEST(ShardReducerTest, ArrivalOrderDoesNotChangeBytes) {
  std::vector<TraceShard> shards = {SampleShard(2, 20, 4),
                                    SampleShard(0, 10, 3),
                                    SampleShard(1, 15, 6)};
  ShardReducer forward;
  for (const auto& s : shards) forward.Add(s);
  ShardReducer reverse;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    reverse.Add(*it);
  }
  EXPECT_EQ(forward.SerializeMerged(), reverse.SerializeMerged());
  EXPECT_EQ(ExportMergedChromeTrace(forward.Merged()),
            ExportMergedChromeTrace(reverse.Merged()));
}

TEST(ShardReducerTest, DuplicateFlushesCollapseToTheFullest) {
  // The same incarnation flushed twice: mid-run (3 records, incomplete)
  // then at exit (5 records, complete). Only the fuller one survives.
  TraceShard early = SampleShard(4, 99, 3);
  early.complete = false;
  TraceShard late = SampleShard(4, 99, 5);
  ShardReducer r;
  r.Add(late);
  r.Add(early);
  ASSERT_EQ(r.Merged().size(), 1u);
  EXPECT_EQ(r.Merged()[0].records.size(), 5u);
  EXPECT_TRUE(r.Merged()[0].complete);
  EXPECT_EQ(r.added(), 2u);
}

TEST(CheckShardsTest, FlagsCorruptedMerges) {
  std::vector<TraceShard> shards = {SampleShard(0, 10, 3),
                                    SampleShard(1, 20, 3)};
  EXPECT_TRUE(CheckShards(shards).empty());

  // Two sends minting the same mid across different shards.
  auto dup = shards;
  dup[1].records[0].mid = dup[0].records[0].mid;
  EXPECT_FALSE(CheckShards(dup).empty());

  // A clocked record that fails to advance the shard's Lamport clock.
  auto stale = shards;
  stale[0].records[2].clock = stale[0].records[1].clock;
  EXPECT_FALSE(CheckShards(stale).empty());
}

TEST(CheckShardsTest, OrphanDeliveryNeedsAnIncompleteSender) {
  TraceShard sender = SampleShard(0, 10, 1);
  TraceShard receiver;
  receiver.node = 1;
  receiver.epoch = 20;
  receiver.complete = true;
  sim::TraceRecord d{};
  d.kind = sim::TraceRecord::Kind::kDeliver;
  d.at = sim::Time::FromTicks(500);
  d.node = 1;
  d.peer = 0;
  d.port = 1;
  d.type = 9;
  d.seq = 0;
  d.clock = 9;
  d.mid = 0xDEAD0001;  // no shard holds the matching send
  receiver.records.push_back(d);

  // Every shard complete: the orphan is a real coherence violation.
  std::vector<TraceShard> complete = {sender, receiver};
  EXPECT_FALSE(CheckShards(complete).empty());

  // The sending node left an incomplete shard (SIGKILLed before its
  // final flush): the unmatched tail is the legitimate gap.
  sender.complete = false;
  std::vector<TraceShard> gap = {sender, receiver};
  EXPECT_TRUE(CheckShards(gap).empty());
}

ClusterConfig TracedConfig() {
  ClusterConfig config;
  config.n = 6;
  config.seed = 11;
  config.link.loss = 0.05;
  config.trace = true;
  return config;
}

TEST(TracedElectionTest, ShardsMergeCleanAndBitIdenticalPerSeed) {
  ClusterConfig config = TracedConfig();
  ClusterResult first = RunSimElection(config, MakeFaultTolerant(1));
  ASSERT_TRUE(first.agreed);
  ASSERT_EQ(first.shards.size(), config.n);

  ShardReducer forward;
  for (const auto& s : first.shards) forward.Add(s);
  auto problems = CheckShards(forward.Merged());
  for (const auto& p : problems) ADD_FAILURE() << p;

  // Rerun: the merged shard file and the merged Perfetto timeline are
  // pure functions of the seed.
  ClusterResult second = RunSimElection(config, MakeFaultTolerant(1));
  ShardReducer rerun;
  // Feed in reverse arrival order for good measure.
  for (auto it = second.shards.rbegin(); it != second.shards.rend(); ++it) {
    rerun.Add(*it);
  }
  EXPECT_EQ(forward.SerializeMerged(), rerun.SerializeMerged());
  EXPECT_EQ(ExportMergedChromeTrace(forward.Merged()),
            ExportMergedChromeTrace(rerun.Merged()));
}

TEST(TracedElectionTest, KillMidElectionRecoversTheVictimsShard) {
  ClusterConfig config = TracedConfig();
  config.n = 8;
  config.seed = 5;
  // Early kill + quick revival, so the revived incarnation is certain
  // to exist before the election can settle.
  config.chaos = {
      {5'000, 2, ChaosEvent::What::kKill},
      {20'000, 2, ChaosEvent::What::kRestart},
  };
  ClusterResult result = RunSimElection(config, MakeFaultTolerant(2));
  ASSERT_TRUE(result.agreed);
  // n surviving incarnations plus the killed one's dying flush.
  ASSERT_EQ(result.shards.size(), config.n + 1);

  // The victim's shard is incomplete and a second incarnation of the
  // same node exists under a different epoch.
  std::size_t node2 = 0, incomplete = 0;
  for (const auto& s : result.shards) {
    if (s.node == 2) ++node2;
    if (!s.complete) ++incomplete;
  }
  EXPECT_EQ(node2, 2u);
  EXPECT_EQ(incomplete, 1u);

  ShardReducer reducer;
  for (const auto& s : result.shards) reducer.Add(s);
  EXPECT_EQ(reducer.Merged().size(), config.n + 1);
  auto problems = CheckShards(reducer.Merged());
  for (const auto& p : problems) ADD_FAILURE() << p;
}

TEST(TracedElectionTest, TraceOffMintsNoShardsButStillAgrees) {
  ClusterConfig config = TracedConfig();
  config.trace = false;
  ClusterResult result = RunSimElection(config, MakeFaultTolerant(1));
  ASSERT_TRUE(result.agreed);
  EXPECT_TRUE(result.shards.empty());
}

TEST(TracedElectionTest, SessionHistogramsReachTheClusterResult) {
  ClusterConfig config = TracedConfig();
  config.link.loss = 0.15;
  ClusterResult result = RunSimElection(config, MakeFaultTolerant(1));
  ASSERT_TRUE(result.agreed);
  EXPECT_GT(result.rtt_us.count(), 0u);
  EXPECT_GT(result.window_occupancy.count(), 0u);
  EXPECT_GT(result.backoff_us.count(), 0u) << "15% loss must retransmit";
}

}  // namespace
}  // namespace celect::obs
