// §5's indistinguishability machinery, as executable properties.
//
// The lower-bound proof builds executions that no comparison-based
// protocol can tell apart: stretching link delays uniformly (the g/h
// transformations) changes *when* things happen but not *what* each node
// observes. We check the executable core of that argument: runs of the
// same protocol on the same network under delay models that differ only
// by a uniform stretch produce identical per-node observation sequences
// (same packets on same ports in the same order), identical leaders and
// identical message counts — only the clock differs. We also check
// determinism: the whole simulation is a pure function of its seed.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "celect/harness/experiment.h"
#include "celect/harness/registry.h"
#include "celect/sim/runtime.h"
#include "celect/wire/checksum.h"
#include "celect/wire/packet_codec.h"

namespace celect {
namespace {

// Per-node observation sequence: deliveries only (what a protocol can
// see), excluding timestamps.
std::vector<std::string> ObservationSequences(const sim::Trace& trace,
                                              std::uint32_t n) {
  std::vector<std::string> seq(n);
  for (const auto& r : trace.records()) {
    if (r.kind != sim::TraceRecord::Kind::kDeliver) continue;
    seq[r.node] += std::to_string(r.port) + ":" + std::to_string(r.type) +
                   ";";
  }
  return seq;
}

std::uint64_t TraceHash(const sim::Trace& trace, bool include_time) {
  std::ostringstream os;
  for (const auto& r : trace.records()) {
    os << static_cast<int>(r.kind) << "," << r.node << "," << r.peer << ","
       << r.port << "," << r.type;
    if (include_time) os << "," << r.at.ticks();
    os << "\n";
  }
  std::string s = os.str();
  return wire::Fnv1a64(reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size());
}

sim::NetworkConfig ConfigFor(const harness::ProtocolSpec& spec,
                             std::uint32_t n, std::uint64_t seed,
                             double delay_units) {
  harness::RunOptions o;
  o.n = n;
  o.seed = seed;
  o.mapper = spec.needs_sense_of_direction
                 ? harness::MapperKind::kSenseOfDirection
                 : harness::MapperKind::kRandom;
  auto config = harness::BuildNetwork(o);
  config.delays = std::make_unique<sim::FunctionDelayModel>(
      [delay_units](const sim::MessageInfo&) {
        return sim::DelayDecision{sim::Time::FromDouble(delay_units),
                                  sim::Time::Zero()};
      });
  return config;
}

class Indistinguishability
    : public ::testing::TestWithParam<std::string> {};

TEST_P(Indistinguishability, UniformDelayStretchIsInvisible) {
  auto spec = harness::FindProtocol(GetParam());
  ASSERT_TRUE(spec.has_value());
  const std::uint32_t n = 16;

  sim::RuntimeOptions rt_opts;
  rt_opts.enable_trace = true;

  // Fast execution: every delay 0.25; stretched: every delay 0.875
  // (both within the model's (0, 1]).
  sim::Runtime fast(ConfigFor(*spec, n, 7, 0.25), spec->make(0), rt_opts);
  auto fast_result = fast.Run();
  sim::Runtime slow(ConfigFor(*spec, n, 7, 0.875), spec->make(0), rt_opts);
  auto slow_result = slow.Run();

  // Identical outcomes and identical per-node observations...
  EXPECT_EQ(fast_result.leader_id, slow_result.leader_id);
  EXPECT_EQ(fast_result.leader_declarations,
            slow_result.leader_declarations);
  EXPECT_EQ(fast_result.total_messages, slow_result.total_messages);
  EXPECT_EQ(ObservationSequences(fast.trace(), n),
            ObservationSequences(slow.trace(), n));
  // ...with only the clock differing.
  EXPECT_LT(fast_result.quiesce_time, slow_result.quiesce_time);
  EXPECT_EQ(TraceHash(fast.trace(), /*include_time=*/false),
            TraceHash(slow.trace(), /*include_time=*/false));
  EXPECT_NE(TraceHash(fast.trace(), /*include_time=*/true),
            TraceHash(slow.trace(), /*include_time=*/true));
}

TEST_P(Indistinguishability, SimulationIsAPureFunctionOfTheSeed) {
  auto spec = harness::FindProtocol(GetParam());
  ASSERT_TRUE(spec.has_value());
  harness::RunOptions o;
  o.n = 16;  // power of two: valid for B and C as well
  o.seed = 99;
  o.delay = harness::DelayKind::kRandom;
  o.identity = harness::IdentityKind::kRandomPermutation;
  o.mapper = spec->needs_sense_of_direction
                 ? harness::MapperKind::kSenseOfDirection
                 : harness::MapperKind::kRandom;
  o.enable_trace = true;

  sim::RuntimeOptions rt_opts;
  rt_opts.enable_trace = true;
  sim::Runtime a(harness::BuildNetwork(o), spec->make(0), rt_opts);
  a.Run();
  sim::Runtime b(harness::BuildNetwork(o), spec->make(0), rt_opts);
  b.Run();
  EXPECT_EQ(TraceHash(a.trace(), true), TraceHash(b.trace(), true));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, Indistinguishability,
                         ::testing::Values("lmw86", "A", "A'", "B", "C",
                                           "D", "E", "F", "G", "G2"));

TEST(Indistinguishability, DelaySwapBeyondCausalityChangesOutcome) {
  // Control: delays that reorder *concurrent* contests are allowed to
  // change who wins — asynchrony is real. Protocol D's winner is
  // delay-independent (pure identity order), so use E, whose winner
  // depends on the capture race.
  auto spec = harness::FindProtocol("E");
  const std::uint32_t n = 24;
  std::map<sim::Id, int> winners;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    harness::RunOptions o;
    o.n = n;
    o.seed = seed;
    o.delay = harness::DelayKind::kRandom;
    auto r = harness::RunElection(spec->make(0), o);
    ASSERT_TRUE(r.leader_id.has_value());
    ++winners[*r.leader_id];
  }
  // Different schedules elect different leaders at least once.
  EXPECT_GT(winners.size(), 1u);
}

}  // namespace
}  // namespace celect
