// Lint fixture: proto-observe / proto-phase-spans — a concrete engine
// with neither observability hook.
#include "celect/proto/bad_engine.h"

namespace celect::proto {

class FixtureEngine : public sim::Process {
 public:
  int OnPacket(int type) {
    switch (type) {
      case kPing:
        return Emit(kOrphan);
      case kNeverSent:
        return 0;
      default:
        return -1;
    }
  }

 private:
  int Emit(int t) { return t + kPing; }
};

}  // namespace celect::proto
