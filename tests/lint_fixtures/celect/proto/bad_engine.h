// Lint fixture: proto-packet-arms — kOrphan lacks a handler arm and
// kNeverSent lacks a send site; kPing has both and stays clean.
#pragma once

#include <cstdint>

namespace celect::proto {

enum FixtureMsg : std::uint16_t {
  kPing = 1,
  kOrphan = 2,
  kNeverSent = 3,
};

}  // namespace celect::proto
