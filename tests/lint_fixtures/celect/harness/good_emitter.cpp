// Lint fixture: consumes live_counter() so only dead getters trip the
// metrics-surfaced rule.
#include "celect/sim/metrics.h"

namespace celect::harness {

unsigned long FixtureEmit(const sim::Metrics& m) {
  return m.live_counter();
}

}  // namespace celect::harness
