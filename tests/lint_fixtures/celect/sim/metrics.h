// Lint fixture: metrics-surfaced — dead_counter() is read nowhere in
// the fixture tree; live_counter() is consumed by the harness emitter.
#pragma once

namespace celect::sim {

class Metrics {
 public:
  unsigned long dead_counter() const { return dead_; }
  unsigned long live_counter() const { return live_; }

 private:
  unsigned long dead_ = 0;
  unsigned long live_ = 0;
};

}  // namespace celect::sim
