// Lint fixture: no-unordered-iteration fires on the range-for and the
// explicit .begin() walk; lookups and membership tests stay clean.
#include <unordered_map>
#include <unordered_set>

namespace celect::sim {

class FixtureUnordered {
 public:
  long Total() const {
    long total = 0;
    for (const auto& [key, value] : table_) total += value;
    for (auto it = seen_.begin(); it != seen_.end(); ++it) ++total;
    return total + static_cast<long>(table_.count(0));
  }

 private:
  std::unordered_map<int, long> table_;
  std::unordered_set<int> seen_;
};

}  // namespace celect::sim
