// Lint fixture: layering — sim must never include the harness layer.
#include "celect/harness/experiment.h"
#include "celect/sim/metrics.h"

namespace celect::sim {}
