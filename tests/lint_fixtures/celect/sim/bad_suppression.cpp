// Lint fixture: the suppression escape hatch and its failure modes.
#include <chrono>

namespace celect::sim {

long FixtureSuppression() {
  // celect-lint: allow(no-wall-clock) fixture-sanctioned probe
  auto t0 = std::chrono::steady_clock::now();
  // celect-lint: allow(no-wall-clock)
  auto t1 = std::chrono::steady_clock::now();
  // celect-lint: allow(not-a-rule) unknown ids are rejected
  // celect-lint: allow no-wall-clock malformed, no parens
  // celect-lint: allow(no-unordered-iteration) nothing here to silence
  return (t1 - t0).count();
}

}  // namespace celect::sim
