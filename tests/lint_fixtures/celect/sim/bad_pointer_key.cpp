// Lint fixture: no-pointer-keys — containers ordered by address.
#include <map>
#include <set>

namespace celect::sim {

struct FixtureNode {
  int id = 0;
};

class FixturePointerKeys {
 private:
  std::map<FixtureNode*, int> by_node_;
  std::set<const FixtureNode*> visited_;
};

}  // namespace celect::sim
