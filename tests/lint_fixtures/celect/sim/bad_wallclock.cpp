// Lint fixture: no-wall-clock fires on every host-clock read below.
#include <chrono>
#include <ctime>

namespace celect::sim {

long FixtureWallClock() {
  auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count() + static_cast<long>(time(nullptr));
}

}  // namespace celect::sim
