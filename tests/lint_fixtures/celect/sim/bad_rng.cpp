// Lint fixture: no-unseeded-rng fires on std engines, distributions,
// and the C library; celect::Rng (util/rng.h) is the only way in.
#include <cstdlib>
#include <random>

namespace celect::sim {

int FixtureRng() {
  std::mt19937 gen(42);
  std::uniform_int_distribution<int> pick(0, 5);
  return pick(gen) + rand();
}

}  // namespace celect::sim
