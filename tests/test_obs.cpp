// Observability layer: phase taxonomy, telemetry primitives, causal
// trace metadata (Lamport clocks, message uids), the Perfetto export,
// and the trace inspector (parse/check/filter/diff/chain).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "celect/analysis/explorer.h"
#include "celect/harness/chaos.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/obs/phase.h"
#include "celect/obs/telemetry.h"
#include "celect/obs/trace_export.h"
#include "celect/obs/trace_inspect.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/proto/nosod/protocol_d.h"
#include "celect/proto/sod/protocol_b.h"
#include "celect/proto/sod/protocol_c.h"

namespace celect {
namespace {

using harness::RunOptions;
using harness::TracedRun;
using obs::PhaseId;
using sim::TraceRecord;

// --- phase taxonomy --------------------------------------------------

TEST(Phase, NamesRoundTrip) {
  for (PhaseId id :
       {PhaseId::kNone, PhaseId::kWakeup, PhaseId::kCapture1,
        PhaseId::kCapture2, PhaseId::kDoubling, PhaseId::kBroadcast,
        PhaseId::kRecovery, PhaseId::kResolve}) {
    auto back = obs::PhaseFromName(obs::PhaseName(id));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(obs::PhaseFromName("capture9").has_value());
  EXPECT_FALSE(obs::PhaseFromName("").has_value());
}

TEST(Phase, KeyEncodesLevel) {
  EXPECT_EQ(obs::PhaseKey(PhaseId::kCapture1, 0), "capture1");
  EXPECT_EQ(obs::PhaseKey(PhaseId::kDoubling, 3), "doubling.3");
}

// --- telemetry primitives --------------------------------------------

TEST(Histogram, BucketsAndStats) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  // Bucket 0 = {0}, bucket 1 = {1}, bucket 2 = {2, 3}, 1000 in bucket 10.
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[10], 1u);
  EXPECT_EQ(h.BucketsUsed(), 11u);
  EXPECT_EQ(h.ApproxQuantile(0.0), 0u);
  EXPECT_EQ(h.ApproxQuantile(1.0), 1000u);
  // The extreme quantile is clamped to the observed max.
  EXPECT_LE(h.ApproxQuantile(0.99), 1000u);
}

TEST(Histogram, MergeMatchesSequentialAdds) {
  obs::Histogram a, b, all;
  for (std::uint64_t v : {5u, 9u, 0u}) {
    a.Add(v);
    all.Add(v);
  }
  for (std::uint64_t v : {1u, 1u, 77u}) {
    b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a, all);
}

TEST(TimeSeries, ThinsDeterministically) {
  obs::TimeSeries ts(4);
  for (std::int64_t i = 0; i < 100; ++i) ts.Sample(i, i * i);
  EXPECT_EQ(ts.samples_seen(), 100u);
  EXPECT_LE(ts.points().size(), 4u);
  ASSERT_FALSE(ts.points().empty());
  // Retained points are a uniform-stride subsequence from t = 0.
  EXPECT_EQ(ts.points().front().at, 0);
  for (std::size_t i = 1; i < ts.points().size(); ++i) {
    EXPECT_LT(ts.points()[i - 1].at, ts.points()[i].at);
  }
  obs::TimeSeries again(4);
  for (std::int64_t i = 0; i < 100; ++i) again.Sample(i, i * i);
  EXPECT_EQ(ts, again);
}

TEST(Telemetry, MergeAndEmpty) {
  obs::Telemetry t;
  EXPECT_TRUE(t.Empty());
  obs::Telemetry o;
  o.latency.Add(3);
  o.inflight.Sample(0, 1);
  t.Merge(o);
  EXPECT_FALSE(t.Empty());
  EXPECT_EQ(t.latency.count(), 1u);
  EXPECT_EQ(t.inflight.samples_seen(), 1u);
}

TEST(TelemetryAccumulator, ConcurrentMergeMatchesSerialFold) {
  // Shards arrive in whatever order the worker threads race to; the
  // histogram totals must match a serial fold because Merge only
  // touches the (commutative, associative) histograms.
  obs::TelemetryAccumulator acc;
  const std::size_t kShards = 32;
  harness::ParallelFor(kShards, 8, [&](std::size_t i) {
    obs::Telemetry shard;
    shard.latency.Add(i);
    shard.queue_depth.Add(2 * i + 1);
    shard.inflight.Sample(static_cast<std::int64_t>(i), 1);
    acc.Merge(shard);
  });
  EXPECT_EQ(acc.shards_merged(), kShards);
  obs::Telemetry total = acc.Snapshot();
  obs::Telemetry serial;
  for (std::size_t i = 0; i < kShards; ++i) {
    obs::Telemetry shard;
    shard.latency.Add(i);
    shard.queue_depth.Add(2 * i + 1);
    serial.Merge(shard);
  }
  EXPECT_EQ(total.latency, serial.latency);
  EXPECT_EQ(total.queue_depth, serial.queue_depth);
  // The order-dependent series is deliberately left out of the
  // accumulated result.
  EXPECT_EQ(total.inflight.samples_seen(), 0u);
}

// --- runtime telemetry -----------------------------------------------

TEST(RuntimeTelemetry, PopulatedWhenEnabled) {
  RunOptions o;
  o.n = 16;
  o.mapper = harness::MapperKind::kSenseOfDirection;
  o.enable_telemetry = true;
  auto r = harness::RunElection(proto::sod::MakeProtocolC(), o);
  EXPECT_FALSE(r.telemetry.Empty());
  EXPECT_GT(r.telemetry.latency.count(), 0u);
  EXPECT_GT(r.telemetry.queue_depth.count(), 0u);
  EXPECT_GT(r.telemetry.capture_width.count(), 0u);
  EXPECT_GT(r.telemetry.inflight.samples_seen(), 0u);

  o.enable_telemetry = false;
  auto off = harness::RunElection(proto::sod::MakeProtocolC(), o);
  EXPECT_TRUE(off.telemetry.Empty());
  // Telemetry must not perturb the simulation itself.
  EXPECT_EQ(off.total_messages, r.total_messages);
  EXPECT_EQ(off.phases, r.phases);
}

// --- phase aggregation -----------------------------------------------

TEST(PhaseAggregation, ProtocolCTablesLineUp) {
  RunOptions o;
  o.n = 16;
  o.mapper = harness::MapperKind::kSenseOfDirection;
  auto r = harness::RunElection(proto::sod::MakeProtocolC(), o);
  ASSERT_TRUE(r.phases.count("capture1"));
  ASSERT_TRUE(r.phases.count("capture2"));
  // N = 16: stride k = 4, so doubling levels 1..2 run for the winner.
  ASSERT_TRUE(r.phases.count("doubling.1"));
  ASSERT_TRUE(r.phases.count("doubling.2"));
  EXPECT_GT(r.phases.at("capture1").spans, 0u);
  EXPECT_GT(r.phases.at("capture1").messages, 0u);
  // Phase-attributed sends never exceed the run's total.
  std::uint64_t attributed = 0;
  for (const auto& [key, agg] : r.phases) attributed += agg.messages;
  EXPECT_LE(attributed, r.total_messages);
}

TEST(PhaseAggregation, ProtocolBDoublingLevels) {
  RunOptions o;
  o.n = 16;
  o.mapper = harness::MapperKind::kSenseOfDirection;
  auto r = harness::RunElection(proto::sod::MakeProtocolB(), o);
  // log2(16) = 4 doubling steps; the winner walks all of them.
  for (int level = 1; level <= 4; ++level) {
    ASSERT_TRUE(r.phases.count("doubling." + std::to_string(level)))
        << "missing level " << level;
  }
  // Step l sends 2^(l-1) captures; at least the winner's are attributed.
  EXPECT_GE(r.phases.at("doubling.4").messages, 8u);
}

TEST(PhaseAggregation, ProtocolDBroadcastSpans) {
  RunOptions o;
  o.n = 8;
  auto r = harness::RunElection(proto::nosod::MakeProtocolD(), o);
  ASSERT_TRUE(r.phases.count("broadcast"));
  // Every base node opens one broadcast span (all wake at zero).
  EXPECT_EQ(r.phases.at("broadcast").spans, 8u);
  EXPECT_GT(r.phases.at("broadcast").ticks, 0);
}

// --- causal trace metadata -------------------------------------------

TracedRun TraceProtocolC(std::uint64_t seed) {
  RunOptions o;
  o.n = 16;
  o.seed = seed;
  o.mapper = harness::MapperKind::kSenseOfDirection;
  return harness::RunElectionTraced(proto::sod::MakeProtocolC(), o);
}

TEST(TraceCausality, CleanRunIsCoherent) {
  TracedRun run = TraceProtocolC(1);
  ASSERT_FALSE(run.records.empty());
  // Lamport monotonicity, delivery join rule, flow pairing, FIFO.
  EXPECT_EQ(obs::CheckRecords(run.records), std::vector<std::string>{});
}

TEST(TraceCausality, TimerLifecycleIsTraced) {
  RunOptions o;
  o.n = 8;
  o.seed = 3;
  auto run = harness::RunElectionTraced(proto::nosod::MakeFaultTolerant(1), o);
  auto count = [&run](TraceRecord::Kind k) {
    return std::count_if(run.records.begin(), run.records.end(),
                         [k](const TraceRecord& r) { return r.kind == k; });
  };
  EXPECT_GT(count(TraceRecord::Kind::kTimerSet), 0);
  // The happy path cancels watchdogs as acks arrive — cancels must be
  // visible or timer timelines dangle.
  EXPECT_GT(count(TraceRecord::Kind::kTimerCancel), 0);
  EXPECT_EQ(obs::CheckRecords(run.records), std::vector<std::string>{});
}

TEST(TraceCausality, CheckCatchesTampering) {
  TracedRun run = TraceProtocolC(1);
  // Break Lamport monotonicity on some clocked record.
  auto tampered = run.records;
  for (auto& r : tampered) {
    if (r.kind == TraceRecord::Kind::kDeliver) {
      r.clock = 0;
      break;
    }
  }
  EXPECT_FALSE(obs::CheckRecords(tampered).empty());

  // Mint a delivery with a mid no send created.
  tampered = run.records;
  for (auto& r : tampered) {
    if (r.kind == TraceRecord::Kind::kDeliver) {
      r.mid = 999999;
      break;
    }
  }
  EXPECT_FALSE(obs::CheckRecords(tampered).empty());
}

TEST(TraceCausality, FlowsPairUnderLossAndDuplication) {
  RunOptions o;
  o.n = 8;
  o.seed = 11;
  o.fault_plan.seed = 11;
  o.fault_plan.link.loss = 0.2;
  o.fault_plan.link.duplicate = 0.2;
  auto run = harness::RunElectionTraced(proto::nosod::MakeProtocolD(), o);
  auto count = [&run](TraceRecord::Kind k) {
    return static_cast<std::uint64_t>(
        std::count_if(run.records.begin(), run.records.end(),
                      [k](const TraceRecord& r) { return r.kind == k; }));
  };
  // The trace accounts for every injected fault...
  EXPECT_EQ(count(TraceRecord::Kind::kLoss), run.result.messages_lost);
  EXPECT_EQ(count(TraceRecord::Kind::kDuplicate),
            run.result.messages_duplicated);
  ASSERT_GT(run.result.messages_lost + run.result.messages_duplicated, 0u);
  // ...and every outcome still pairs with a minted send. FIFO is off:
  // duplicates legitimately overtake.
  obs::CheckOptions co;
  co.expect_fifo = false;
  EXPECT_EQ(obs::CheckRecords(run.records, co), std::vector<std::string>{});
}

TEST(TraceCausality, TruncationIsSurfacedNeverSilent) {
  RunOptions o;
  o.n = 16;
  o.mapper = harness::MapperKind::kSenseOfDirection;
  o.trace_cap = 10;
  TracedRun run =
      harness::RunElectionTraced(proto::sod::MakeProtocolC(), o);
  EXPECT_EQ(run.records.size(), 10u);
  ASSERT_TRUE(run.result.counters.count("sim.trace_truncated"));
  EXPECT_GT(run.result.counters.at("sim.trace_truncated"), 0);

  // An uncapped run of the same seed reports nothing.
  o.trace_cap = 10'000'000;
  TracedRun full =
      harness::RunElectionTraced(proto::sod::MakeProtocolC(), o);
  EXPECT_FALSE(full.result.counters.count("sim.trace_truncated"));
}

// --- compact format + inspector --------------------------------------

TEST(TraceInspect, SerializeParseRoundTrip) {
  TracedRun run = TraceProtocolC(1);
  std::string compact = obs::SerializeRecords(run.records);
  std::string error;
  auto parsed = obs::ParseRecords(compact, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), run.records.size());
  EXPECT_EQ(obs::SerializeRecords(*parsed), compact);
}

TEST(TraceInspect, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::ParseRecords("not a trace\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(
      obs::ParseRecords("0 send at=0 node=0 peer=1 port=1 type=1 clock=1 "
                        "mid=1 phase=bogus\n",
                        &error)
          .has_value());
}

TEST(TraceInspect, FilterSelects) {
  TracedRun run = TraceProtocolC(1);
  obs::TraceFilter f;
  f.node = 0;
  auto by_node = obs::FilterRecords(run.records, f);
  ASSERT_FALSE(by_node.empty());
  for (const auto& r : by_node) {
    EXPECT_TRUE(r.node == 0 || r.peer == 0);
  }
  obs::TraceFilter p;
  p.phase = PhaseId::kCapture1;
  auto by_phase = obs::FilterRecords(run.records, p);
  ASSERT_FALSE(by_phase.empty());
  for (const auto& r : by_phase) EXPECT_EQ(r.phase, PhaseId::kCapture1);
  obs::TraceFilter window;
  window.min_ticks = 0;
  window.max_ticks = 0;
  auto at_zero = obs::FilterRecords(run.records, window);
  ASSERT_FALSE(at_zero.empty());
  for (const auto& r : at_zero) EXPECT_EQ(r.at.ticks(), 0);
}

TEST(TraceInspect, DiffFindsFirstDivergence) {
  TracedRun run = TraceProtocolC(1);
  EXPECT_FALSE(obs::DiffRecords(run.records, run.records).has_value());
  auto other = run.records;
  other[5].clock += 1;
  auto diff = obs::DiffRecords(run.records, other);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("record 5"), std::string::npos) << *diff;
  other = run.records;
  other.pop_back();
  EXPECT_TRUE(obs::DiffRecords(run.records, other).has_value());
}

TEST(TraceInspect, CausalChainWalksBackToTheWakeup) {
  // Single-wakeup D run: node 0 wakes, elects over every port; each
  // accept is caused by the elect delivery, which is caused by the send,
  // which is caused by the wakeup.
  RunOptions o;
  o.n = 3;
  o.wakeup = harness::WakeupKind::kSingle;
  auto run = harness::RunElectionTraced(proto::nosod::MakeProtocolD(), o);
  // Find an accept (type 2) send minted by node 1 or 2.
  std::uint64_t accept_mid = 0;
  for (const auto& r : run.records) {
    if (r.kind == TraceRecord::Kind::kSend && r.node != 0) {
      accept_mid = r.mid;
      break;
    }
  }
  ASSERT_NE(accept_mid, 0u);
  auto chain = obs::CausalChain(run.records, accept_mid);
  ASSERT_GE(chain.size(), 4u);
  // Oldest first: the spontaneous wakeup of node 0 starts the chain.
  EXPECT_EQ(chain.front().kind, TraceRecord::Kind::kWakeup);
  EXPECT_EQ(chain.front().node, 0u);
  // The chain crosses the elect's send->deliver hop and ends with the
  // accept's own outcomes.
  EXPECT_EQ(chain.back().kind, TraceRecord::Kind::kDeliver);
  EXPECT_EQ(chain.back().mid, accept_mid);
  EXPECT_TRUE(obs::CausalChain(run.records, 999999).empty());
}

// --- Perfetto export -------------------------------------------------

TEST(TraceExport, GoldenPerfettoProtocolD) {
  RunOptions o;
  o.n = 3;
  o.wakeup = harness::WakeupKind::kSingle;
  auto run = harness::RunElectionTraced(proto::nosod::MakeProtocolD(), o);
  // Byte-exact golden: a deliberate format change must update this test
  // (and DESIGN.md §11). Regenerate with:
  //   celect_trace record --protocol=D --n=3 --seed=1 --wakeup=single
  //       --perfetto=/dev/stdout --name=celect   (one command line)
  const std::string expected = R"({"displayTimeUnit": "ms", "traceEvents": [
{"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "celect"}},
{"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "node 0"}},
{"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 0, "args": {"sort_index": 0}},
{"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "node 1"}},
{"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 1, "args": {"sort_index": 1}},
{"name": "thread_name", "ph": "M", "pid": 1, "tid": 2, "args": {"name": "node 2"}},
{"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 2, "args": {"sort_index": 2}},
{"name": "wakeup", "ph": "i", "pid": 1, "tid": 0, "ts": 0, "s": "t", "args": {"seq": 0, "clock": 1}},
{"name": "broadcast", "ph": "B", "pid": 1, "tid": 0, "ts": 0, "args": {"seq": 1, "clock": 1, "phase": "broadcast"}},
{"name": "send t1", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 0, "args": {"seq": 2, "clock": 2, "mid": 1, "port": 1, "type": 1, "peer": 2, "phase": "broadcast"}},
{"name": "msg", "ph": "s", "pid": 1, "tid": 0, "ts": 0, "cat": "msg", "id": 1},
{"name": "send t1", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 0, "args": {"seq": 3, "clock": 3, "mid": 2, "port": 2, "type": 1, "peer": 1, "phase": "broadcast"}},
{"name": "msg", "ph": "s", "pid": 1, "tid": 0, "ts": 0, "cat": "msg", "id": 2},
{"name": "recv t1", "ph": "X", "pid": 1, "tid": 2, "ts": 1048576, "dur": 0, "args": {"seq": 4, "clock": 3, "mid": 1, "port": 2, "type": 1, "peer": 0}},
{"name": "msg", "ph": "f", "pid": 1, "tid": 2, "ts": 1048576, "cat": "msg", "id": 1, "bp": "e"},
{"name": "send t2", "ph": "X", "pid": 1, "tid": 2, "ts": 1048576, "dur": 0, "args": {"seq": 5, "clock": 4, "mid": 3, "port": 2, "type": 2, "peer": 0}},
{"name": "msg", "ph": "s", "pid": 1, "tid": 2, "ts": 1048576, "cat": "msg", "id": 3},
{"name": "recv t1", "ph": "X", "pid": 1, "tid": 1, "ts": 1048576, "dur": 0, "args": {"seq": 6, "clock": 4, "mid": 2, "port": 2, "type": 1, "peer": 0}},
{"name": "msg", "ph": "f", "pid": 1, "tid": 1, "ts": 1048576, "cat": "msg", "id": 2, "bp": "e"},
{"name": "send t2", "ph": "X", "pid": 1, "tid": 1, "ts": 1048576, "dur": 0, "args": {"seq": 7, "clock": 5, "mid": 4, "port": 2, "type": 2, "peer": 0}},
{"name": "msg", "ph": "s", "pid": 1, "tid": 1, "ts": 1048576, "cat": "msg", "id": 4},
{"name": "recv t2", "ph": "X", "pid": 1, "tid": 0, "ts": 2097152, "dur": 0, "args": {"seq": 8, "clock": 5, "mid": 3, "port": 1, "type": 2, "peer": 2, "phase": "broadcast"}},
{"name": "msg", "ph": "f", "pid": 1, "tid": 0, "ts": 2097152, "cat": "msg", "id": 3, "bp": "e"},
{"name": "recv t2", "ph": "X", "pid": 1, "tid": 0, "ts": 2097152, "dur": 0, "args": {"seq": 9, "clock": 6, "mid": 4, "port": 2, "type": 2, "peer": 1, "phase": "broadcast"}},
{"name": "msg", "ph": "f", "pid": 1, "tid": 0, "ts": 2097152, "cat": "msg", "id": 4, "bp": "e"},
{"name": "broadcast", "ph": "E", "pid": 1, "tid": 0, "ts": 2097152, "args": {"seq": 10, "clock": 6, "phase": "broadcast"}},
{"name": "LEADER", "ph": "i", "pid": 1, "tid": 0, "ts": 2097152, "s": "g", "args": {"seq": 11, "clock": 6}},
{"name": "trace_end", "ph": "M", "pid": 1, "args": {"records": 12}}
]}
)";
  EXPECT_EQ(obs::ExportChromeTrace(run.records), expected);
  EXPECT_FALSE(obs::ValidateJson(expected).has_value());
}

TEST(TraceExport, ByteDeterministicPerSeed) {
  // Random delays make the schedule genuinely seed-dependent (the unit
  // model is seed-invariant, which would make the NE check vacuous).
  auto traced = [](std::uint64_t seed) {
    RunOptions o;
    o.n = 16;
    o.seed = seed;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    o.delay = harness::DelayKind::kRandom;
    return harness::RunElectionTraced(proto::sod::MakeProtocolC(), o);
  };
  TracedRun a = traced(7);
  TracedRun b = traced(7);
  EXPECT_EQ(obs::ExportChromeTrace(a.records),
            obs::ExportChromeTrace(b.records));
  TracedRun c = traced(8);
  EXPECT_NE(obs::ExportChromeTrace(a.records),
            obs::ExportChromeTrace(c.records));
}

TEST(TraceExport, ExportedDocumentIsWellFormed) {
  RunOptions o;
  o.n = 8;
  o.seed = 5;
  o.fault_plan.seed = 5;
  o.fault_plan.link.loss = 0.1;
  auto run = harness::RunElectionTraced(proto::nosod::MakeProtocolD(), o);
  std::string json = obs::ExportChromeTrace(run.records);
  EXPECT_FALSE(obs::ValidateJson(json).has_value());
}

TEST(ValidateJson, RejectsBrokenDocuments) {
  EXPECT_FALSE(obs::ValidateJson("{\"a\": [1, 2, {\"b\": null}]}").has_value());
  EXPECT_TRUE(obs::ValidateJson("{\"a\": }").has_value());
  EXPECT_TRUE(obs::ValidateJson("{\"a\": 1} trailing").has_value());
  EXPECT_TRUE(obs::ValidateJson("").has_value());
}

// --- explorer bridge -------------------------------------------------

TEST(ExplorerTrace, ReplayScheduleTracedMatchesUntraced) {
  RunOptions ro;
  ro.n = 3;
  auto config = [&ro] { return harness::BuildNetwork(ro); };
  const auto factory = proto::nosod::MakeProtocolD();
  std::vector<std::uint32_t> choices = {1, 0, 2};
  auto plain = analysis::ReplaySchedule(factory, config, choices);
  auto traced = analysis::ReplayScheduleTraced(factory, config, choices);
  // Tracing must not perturb the replayed schedule.
  EXPECT_EQ(harness::FingerprintResult(plain.result),
            harness::FingerprintResult(traced.result));
  EXPECT_EQ(plain.violations, traced.violations);
  ASSERT_FALSE(traced.records.empty());
  // Controlled schedules may reorder across links; FIFO stays on here
  // because the controller preserves per-link FIFO by construction.
  EXPECT_EQ(obs::CheckRecords(traced.records), std::vector<std::string>{});
  std::string json = obs::ExportChromeTrace(traced.records);
  EXPECT_FALSE(obs::ValidateJson(json).has_value());
}

}  // namespace
}  // namespace celect
