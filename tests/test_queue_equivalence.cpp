// Ladder queue vs reference heap: bit-identical simulation.
//
// The ladder rework (event_queue.{h,cpp}) is only allowed to change how
// fast events come out, never which events or in what order. These tests
// run the same elections twice — RunOptions::reference_queue selecting
// the seed binary heap vs the ladder — and require FingerprintResult to
// match exactly, across the E7-style protocol grid, the chaos harness
// (faults, cancelled timers, duplicates), and sweep thread counts.
//
// An opt-in large configuration (CELECT_LARGE_TESTS=1 in the
// environment) runs the million-node smoke elections from the ladder's
// acceptance bar; they need a few GB of RAM and ~1 minute.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "celect/harness/chaos.h"
#include "celect/harness/experiment.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/proto/nosod/protocol_d.h"
#include "celect/proto/nosod/protocol_e.h"
#include "celect/proto/nosod/protocol_f.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/proto/sod/protocol_a.h"
#include "celect/proto/sod/protocol_a_prime.h"
#include "celect/proto/sod/protocol_b.h"
#include "celect/proto/sod/protocol_c.h"

namespace celect {
namespace {

using harness::DelayKind;
using harness::FingerprintResult;
using harness::MapperKind;
using harness::RunOptions;
using harness::WakeupKind;

struct GridProtocol {
  const char* name;
  sim::ProcessFactory factory;
  bool sod;
  bool pow2_only;
};

std::vector<GridProtocol> GridProtocols() {
  std::vector<GridProtocol> out;
  out.push_back({"A", proto::sod::MakeProtocolA(), true, false});
  out.push_back({"A'", proto::sod::MakeProtocolAPrime(), true, false});
  out.push_back({"B", proto::sod::MakeProtocolB(), true, true});
  out.push_back({"C", proto::sod::MakeProtocolC(), true, true});
  out.push_back({"D", proto::nosod::MakeProtocolD(), false, false});
  out.push_back({"E", proto::nosod::MakeProtocolE(), false, false});
  out.push_back({"F(3)", proto::nosod::MakeProtocolF(3), false, false});
  out.push_back({"G(3)", proto::nosod::MakeProtocolG(3), false, false});
  out.push_back({"FT(1)", proto::nosod::MakeFaultTolerant(1), false, false});
  return out;
}

// Runs `options` on both queues and asserts identical fingerprints.
void ExpectQueueEquivalence(const GridProtocol& p, RunOptions options,
                            const std::string& label) {
  options.reference_queue = false;
  const std::uint64_t ladder =
      FingerprintResult(harness::RunElection(p.factory, options));
  options.reference_queue = true;
  const std::uint64_t heap =
      FingerprintResult(harness::RunElection(p.factory, options));
  EXPECT_EQ(ladder, heap) << p.name << " " << label;
}

TEST(QueueEquivalence, ProtocolGridMatchesReferenceHeap) {
  for (const auto& p : GridProtocols()) {
    for (std::uint32_t n : {std::uint32_t{16}, std::uint32_t{64}}) {
      if (p.pow2_only && (n & (n - 1)) != 0) continue;
      for (DelayKind delay :
           {DelayKind::kUnit, DelayKind::kRandom, DelayKind::kEager}) {
        RunOptions o;
        o.n = n;
        o.seed = 3;
        o.mapper = p.sod ? MapperKind::kSenseOfDirection
                         : MapperKind::kRandom;
        o.delay = delay;
        o.identity = harness::IdentityKind::kRandomPermutation;
        ExpectQueueEquivalence(
            p, o, "n=" + std::to_string(n) + " delay=" +
                      std::to_string(static_cast<int>(delay)));
      }
    }
  }
}

TEST(QueueEquivalence, StaggeredWakeupsAndSerializedPackets) {
  for (const auto& p : GridProtocols()) {
    RunOptions o;
    o.n = 32;
    o.seed = 11;
    o.mapper = p.sod ? MapperKind::kSenseOfDirection : MapperKind::kRandom;
    o.delay = DelayKind::kRandom;
    o.wakeup = WakeupKind::kStaggeredChain;
    o.serialize_packets = true;
    ExpectQueueEquivalence(p, o, "staggered+serialized");
  }
}

// Chaos runs exercise exactly what the grid above can't: cancelled
// timers popping as tombstones, crash-cleared timer sets, duplicated
// and reordered deliveries.
TEST(QueueEquivalence, ChaosCasesMatchReferenceHeap) {
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    harness::ChaosOptions co;
    co.n = 16;
    co.max_crashes = 1;
    co.loss = 0.05;
    co.duplicate = 0.05;
    co.reorder = 0.05;
    co.reference_queue = false;
    auto ladder =
        RunChaosCase(proto::nosod::MakeFaultTolerant(1), seed, co);
    co.reference_queue = true;
    auto heap = RunChaosCase(proto::nosod::MakeFaultTolerant(1), seed, co);
    EXPECT_EQ(FingerprintResult(ladder.result),
              FingerprintResult(heap.result))
        << "chaos seed " << seed;
    EXPECT_EQ(ladder.violation, heap.violation) << "chaos seed " << seed;
  }
}

// Sweep results are reduced in seed order regardless of worker count;
// the ladder queue must keep that equivalence (each case is an
// independent single-threaded simulation either way).
TEST(QueueEquivalence, ChaosSweepIdenticalAcrossThreadCounts) {
  harness::ChaosOptions co;
  co.n = 12;
  co.max_crashes = 1;
  co.loss = 0.02;
  auto one = co;
  one.threads = 1;
  auto eight = co;
  eight.threads = 8;
  const auto a =
      SweepChaos(proto::nosod::MakeFaultTolerant(1), 100, 16, one);
  const auto b =
      SweepChaos(proto::nosod::MakeFaultTolerant(1), 100, 16, eight);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.crashes_injected, b.crashes_injected);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated);
  EXPECT_EQ(a.messages_reordered, b.messages_reordered);
  EXPECT_EQ(a.timers_fired, b.timers_fired);
  EXPECT_EQ(a.messages.mean(), b.messages.mean());
  EXPECT_EQ(a.time.mean(), b.time.mean());
}

bool LargeTestsEnabled() {
  const char* v = std::getenv("CELECT_LARGE_TESTS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Million-node smoke elections (the ladder's reason to exist). Opt-in:
// CELECT_LARGE_TESTS=1. Protocol C wants a power of two, so its run uses
// N = 2^20 = 1,048,576; G(3) runs at exactly 10^6.
TEST(QueueEquivalence, LargeMillionNodeProtocolCSmoke) {
  if (!LargeTestsEnabled()) {
    GTEST_SKIP() << "set CELECT_LARGE_TESTS=1 to run (needs ~2 GB, ~10 s)";
  }
  RunOptions o;
  o.n = 1u << 20;
  o.mapper = MapperKind::kSenseOfDirection;
  o.identity = harness::IdentityKind::kRandomPermutation;
  auto r = harness::RunElection(proto::sod::MakeProtocolC(), o);
  EXPECT_EQ(r.leader_declarations, 1u);
  EXPECT_TRUE(r.leader_id.has_value());
  EXPECT_GT(r.events_processed, o.n);
}

TEST(QueueEquivalence, LargeMillionNodeProtocolGSmoke) {
  if (!LargeTestsEnabled()) {
    GTEST_SKIP() << "set CELECT_LARGE_TESTS=1 to run (needs ~4 GB, ~40 s)";
  }
  RunOptions o;
  o.n = 1'000'000;
  o.mapper = MapperKind::kRandom;
  o.identity = harness::IdentityKind::kRandomPermutation;
  auto r = harness::RunElection(proto::nosod::MakeProtocolG(3), o);
  EXPECT_EQ(r.leader_declarations, 1u);
  EXPECT_TRUE(r.leader_id.has_value());
  EXPECT_GT(r.events_processed, o.n);
}

}  // namespace
}  // namespace celect
