// Randomised wire-format tests: round-trips over random packets and
// rejection of random corruptions. Deterministic (seeded) so failures
// reproduce.
#include <gtest/gtest.h>

#include "celect/util/rng.h"
#include "celect/wire/packet_codec.h"

namespace celect::wire {
namespace {

Packet RandomPacket(Rng& rng) {
  Packet p;
  p.type = static_cast<std::uint16_t>(rng.NextBelow(0x10000));
  std::size_t fields = rng.NextBelow(9);
  for (std::size_t i = 0; i < fields; ++i) {
    // Mix small values (the common case) with full-range extremes.
    switch (rng.NextBelow(4)) {
      case 0:
        p.fields.push_back(static_cast<std::int64_t>(rng.NextBelow(256)));
        break;
      case 1:
        p.fields.push_back(-static_cast<std::int64_t>(rng.NextBelow(256)));
        break;
      default:
        p.fields.push_back(static_cast<std::int64_t>(rng.Next()));
        break;
    }
  }
  return p;
}

TEST(WireFuzz, RandomPacketsRoundTrip) {
  Rng rng(2026);
  for (int trial = 0; trial < 5000; ++trial) {
    Packet p = RandomPacket(rng);
    auto buf = Encode(p);
    ASSERT_EQ(buf.size(), EncodedSize(p)) << trial;
    auto back = Decode(buf);
    ASSERT_TRUE(back.has_value()) << trial;
    EXPECT_EQ(*back, p) << trial;
  }
}

TEST(WireFuzz, SingleBitFlipsAreRejectedOrEqual) {
  // A one-bit corruption must never decode to a *different* packet: the
  // checksum catches it (decode fails). We tolerate the theoretical
  // checksum collision by asserting "fails or equals", and count that
  // in practice every flip is caught.
  Rng rng(777);
  int caught = 0, total = 0;
  for (int trial = 0; trial < 800; ++trial) {
    Packet p = RandomPacket(rng);
    auto buf = Encode(p);
    std::size_t byte = rng.NextBelow(buf.size());
    std::uint8_t bit = static_cast<std::uint8_t>(1u << rng.NextBelow(8));
    buf[byte] ^= bit;
    auto back = Decode(buf);
    ++total;
    if (!back.has_value()) {
      ++caught;
    } else {
      EXPECT_EQ(*back, p) << "corruption decoded to a different packet";
    }
  }
  EXPECT_GE(caught, total - 2);
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  Rng rng(31337);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> junk(rng.NextBelow(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.NextBelow(256));
    auto result = Decode(junk);  // must not crash; usually nullopt
    if (result.has_value()) {
      // If it parses, re-encoding must reproduce the same bytes.
      EXPECT_EQ(Encode(*result), junk);
    }
  }
}

TEST(WireFuzz, ConcatenatedFramesRejectedAsSingleFrame) {
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    auto a = Encode(RandomPacket(rng));
    auto b = Encode(RandomPacket(rng));
    a.insert(a.end(), b.begin(), b.end());
    EXPECT_FALSE(Decode(a).has_value()) << trial;
  }
}

}  // namespace
}  // namespace celect::wire
