// Randomised wire-format tests: round-trips over random packets and
// rejection of random corruptions. Deterministic (seeded) so failures
// reproduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "celect/util/rng.h"
#include "celect/wire/checksum.h"
#include "celect/wire/packet_codec.h"
#include "celect/wire/varint.h"

namespace celect::wire {
namespace {

Packet RandomPacket(Rng& rng) {
  Packet p;
  p.type = static_cast<std::uint16_t>(rng.NextBelow(0x10000));
  std::size_t fields = rng.NextBelow(9);
  for (std::size_t i = 0; i < fields; ++i) {
    // Mix small values (the common case) with full-range extremes.
    switch (rng.NextBelow(4)) {
      case 0:
        p.fields.push_back(static_cast<std::int64_t>(rng.NextBelow(256)));
        break;
      case 1:
        p.fields.push_back(-static_cast<std::int64_t>(rng.NextBelow(256)));
        break;
      default:
        p.fields.push_back(static_cast<std::int64_t>(rng.Next()));
        break;
    }
  }
  return p;
}

TEST(WireFuzz, RandomPacketsRoundTrip) {
  Rng rng(2026);
  for (int trial = 0; trial < 5000; ++trial) {
    Packet p = RandomPacket(rng);
    auto buf = Encode(p);
    ASSERT_EQ(buf.size(), EncodedSize(p)) << trial;
    auto back = Decode(buf);
    ASSERT_TRUE(back.has_value()) << trial;
    EXPECT_EQ(*back, p) << trial;
  }
}

TEST(WireFuzz, SingleBitFlipsAreRejectedOrEqual) {
  // A one-bit corruption must never decode to a *different* packet: the
  // checksum catches it (decode fails). We tolerate the theoretical
  // checksum collision by asserting "fails or equals", and count that
  // in practice every flip is caught.
  Rng rng(777);
  int caught = 0, total = 0;
  for (int trial = 0; trial < 800; ++trial) {
    Packet p = RandomPacket(rng);
    auto buf = Encode(p);
    std::size_t byte = rng.NextBelow(buf.size());
    std::uint8_t bit = static_cast<std::uint8_t>(1u << rng.NextBelow(8));
    buf[byte] ^= bit;
    auto back = Decode(buf);
    ++total;
    if (!back.has_value()) {
      ++caught;
    } else {
      EXPECT_EQ(*back, p) << "corruption decoded to a different packet";
    }
  }
  EXPECT_GE(caught, total - 2);
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  Rng rng(31337);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> junk(rng.NextBelow(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.NextBelow(256));
    auto result = Decode(junk);  // must not crash; usually nullopt
    if (result.has_value()) {
      // If it parses, re-encoding must reproduce the same bytes.
      EXPECT_EQ(Encode(*result), junk);
    }
  }
}

TEST(WireFuzz, ConcatenatedFramesRejectedAsSingleFrame) {
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    auto a = Encode(RandomPacket(rng));
    auto b = Encode(RandomPacket(rng));
    a.insert(a.end(), b.begin(), b.end());
    EXPECT_FALSE(Decode(a).has_value()) << trial;
  }
}

TEST(WireFuzz, OverlongVarintCorpusRejected) {
  // Non-canonical spellings an attacker (or bit-rot) could emit: each
  // decodes to a value the canonical encoder spells differently, so the
  // strict reader must refuse them with the typed error.
  const std::vector<std::vector<std::uint8_t>> corpus = {
      {0x80, 0x00},              // 0 in two bytes
      {0xFF, 0x00},              // 127 in two bytes
      {0x80, 0x80, 0x00},       // 0 in three bytes
      {0xAC, 0x80, 0x00},       // 44 with a redundant zero group
  };
  for (const auto& bytes : corpus) {
    VarintReader r(bytes.data(), bytes.size());
    EXPECT_FALSE(r.ReadVarint().has_value());
    EXPECT_EQ(r.error(), VarintError::kOverlong);
  }
  // The canonical spellings still parse.
  for (std::uint64_t v : {0ull, 127ull, 128ull, 44ull, ~0ull}) {
    std::vector<std::uint8_t> buf;
    PutVarint(buf, v);
    VarintReader r(buf.data(), buf.size());
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
    EXPECT_EQ(r.error(), VarintError::kNone);
  }
}

TEST(WireFuzz, VarintOverflowAndTruncationTyped) {
  // 11-byte chain: overflows 64 bits.
  std::vector<std::uint8_t> over(10, 0x80);
  over.push_back(0x02);
  VarintReader r1(over.data(), over.size());
  EXPECT_FALSE(r1.ReadVarint().has_value());
  EXPECT_EQ(r1.error(), VarintError::kOverflow);
  // All-continuation input: truncated.
  std::vector<std::uint8_t> trunc(3, 0x80);
  VarintReader r2(trunc.data(), trunc.size());
  EXPECT_FALSE(r2.ReadVarint().has_value());
  EXPECT_EQ(r2.error(), VarintError::kTruncated);
}

TEST(WireFuzz, OversizedFrameRejectedBeforeParsing) {
  std::vector<std::uint8_t> huge(kMaxEncodedPacketBytes + 1, 0x01);
  DecodeStatus status;
  EXPECT_FALSE(Decode(huge.data(), huge.size(), status).has_value());
  EXPECT_EQ(status, DecodeStatus::kOversizedFrame);
}

TEST(WireFuzz, TooManyFieldsRejected) {
  std::vector<std::uint8_t> buf;
  PutVarint(buf, 7);                        // type
  PutVarint(buf, kMaxPacketFields + 1);     // hostile field count
  DecodeStatus status;
  EXPECT_FALSE(Decode(buf.data(), buf.size(), status).has_value());
  EXPECT_EQ(status, DecodeStatus::kTooManyFields);
}

TEST(WireFuzz, DecodeStatusMatchesCause) {
  Packet p;
  p.type = 42;
  p.fields = {1, -2, 3};
  auto good = Encode(p);
  DecodeStatus status;

  ASSERT_TRUE(Decode(good.data(), good.size(), status).has_value());
  EXPECT_EQ(status, DecodeStatus::kOk);

  auto truncated = good;
  truncated.pop_back();
  EXPECT_FALSE(Decode(truncated.data(), truncated.size(), status));
  EXPECT_EQ(status, DecodeStatus::kTruncated);

  auto bad_sum = good;
  bad_sum.back() ^= 0xFF;  // checksum trailer byte
  EXPECT_FALSE(Decode(bad_sum.data(), bad_sum.size(), status));
  EXPECT_EQ(status, DecodeStatus::kBadChecksum);

  auto trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(Decode(trailing.data(), trailing.size(), status));
  EXPECT_EQ(status, DecodeStatus::kTrailingGarbage);

  std::vector<std::uint8_t> bad_type;
  PutVarint(bad_type, 0x10000);  // one past the uint16 type space
  EXPECT_FALSE(Decode(bad_type.data(), bad_type.size(), status));
  EXPECT_EQ(status, DecodeStatus::kBadType);

  std::vector<std::uint8_t> overlong = {0x80, 0x00};
  EXPECT_FALSE(Decode(overlong.data(), overlong.size(), status));
  EXPECT_EQ(status, DecodeStatus::kOverlongVarint);
}

TEST(WireFuzz, StreamingChecksumMatchesOneShot) {
  Rng rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(rng.NextBelow(300));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBelow(256));
    Fnv1aStream stream;
    std::size_t pos = 0;
    while (pos < data.size()) {
      // Random chunking, including single bytes and empty slices.
      std::size_t chunk = rng.NextBelow(17);
      chunk = std::min(chunk, data.size() - pos);
      stream.Update(data.data() + pos, chunk);
      pos += chunk;
    }
    EXPECT_EQ(stream.Digest64(), Fnv1a64(data)) << trial;
    EXPECT_EQ(stream.Digest32(), Checksum32(data)) << trial;
  }
}

TEST(WireFuzz, EncodedPacketsStayUnderFrameBound) {
  // The reliability layer assumes any protocol packet fits one frame;
  // the widest packet the codec accepts must confirm that.
  Packet widest;
  widest.type = 0xFFFF;
  for (std::size_t i = 0; i < kMaxPacketFields; ++i) {
    widest.fields.push_back(std::numeric_limits<std::int64_t>::min());
  }
  EXPECT_LE(EncodedSize(widest), kMaxEncodedPacketBytes);
}

}  // namespace
}  // namespace celect::wire
