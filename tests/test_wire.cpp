#include <gtest/gtest.h>

#include <limits>

#include "celect/wire/checksum.h"
#include "celect/wire/packet_codec.h"
#include "celect/wire/varint.h"

namespace celect::wire {
namespace {

TEST(Varint, RoundTripSmallValues) {
  for (std::uint64_t v = 0; v < 300; ++v) {
    std::vector<std::uint8_t> buf;
    PutVarint(buf, v);
    EXPECT_EQ(buf.size(), VarintSize(v));
    VarintReader r(buf);
    auto back = r.ReadVarint();
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(Varint, RoundTripBoundaryValues) {
  const std::uint64_t kValues[] = {
      0, 127, 128, 16383, 16384, (1ull << 32) - 1, 1ull << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : kValues) {
    std::vector<std::uint8_t> buf;
    PutVarint(buf, v);
    VarintReader r(buf);
    EXPECT_EQ(r.ReadVarint(), v);
  }
}

TEST(Varint, SizeGrowsAtSevenBitBoundaries) {
  EXPECT_EQ(VarintSize(0), 1u);
  EXPECT_EQ(VarintSize(127), 1u);
  EXPECT_EQ(VarintSize(128), 2u);
  EXPECT_EQ(VarintSize(16383), 2u);
  EXPECT_EQ(VarintSize(16384), 3u);
  EXPECT_EQ(VarintSize(~0ull), 10u);
}

TEST(Varint, TruncatedInputFails) {
  std::vector<std::uint8_t> buf;
  PutVarint(buf, 1ull << 40);
  buf.pop_back();
  VarintReader r(buf);
  EXPECT_FALSE(r.ReadVarint().has_value());
}

TEST(Varint, EmptyInputFails) {
  VarintReader r(nullptr, 0);
  EXPECT_FALSE(r.ReadVarint().has_value());
  EXPECT_FALSE(r.ReadByte().has_value());
}

TEST(Zigzag, MapsSignAlternately) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
  EXPECT_EQ(ZigzagEncode(2), 4u);
}

TEST(Zigzag, RoundTripExtremes) {
  for (std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

TEST(SignedVarint, SmallMagnitudesAreOneByte) {
  EXPECT_EQ(SignedVarintSize(0), 1u);
  EXPECT_EQ(SignedVarintSize(-64), 1u);
  EXPECT_EQ(SignedVarintSize(63), 1u);
  EXPECT_EQ(SignedVarintSize(64), 2u);
}

TEST(Checksum, DeterministicAndSensitive) {
  std::vector<std::uint8_t> a{1, 2, 3, 4};
  std::vector<std::uint8_t> b{1, 2, 3, 5};
  EXPECT_EQ(Checksum32(a), Checksum32(a));
  EXPECT_NE(Checksum32(a), Checksum32(b));
}

TEST(Checksum, EmptyInputHasStableValue) {
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
}

TEST(PacketCodec, RoundTripTypicalPackets) {
  for (const Packet& p :
       {Packet{1, {}}, Packet{2, {42}}, Packet{3, {7, -9}},
        Packet{500, {0, 1, -1, std::numeric_limits<std::int64_t>::max(),
                     std::numeric_limits<std::int64_t>::min()}}}) {
    auto buf = Encode(p);
    EXPECT_EQ(buf.size(), EncodedSize(p));
    auto back = Decode(buf);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
}

TEST(PacketCodec, SmallPacketsStayOLogNBits) {
  // The model allows O(log N) bits per message; a typical election
  // packet (type + id + level) must stay tiny.
  Packet p{3, {123456, 78}};
  EXPECT_LE(EncodedSize(p), 16u);
}

TEST(PacketCodec, CorruptedChecksumRejected) {
  auto buf = Encode(Packet{7, {1, 2, 3}});
  buf.back() ^= 0xFF;
  EXPECT_FALSE(Decode(buf).has_value());
}

TEST(PacketCodec, CorruptedBodyRejected) {
  auto buf = Encode(Packet{7, {1, 2, 3}});
  buf[1] ^= 0x01;
  EXPECT_FALSE(Decode(buf).has_value());
}

TEST(PacketCodec, TruncationRejected) {
  auto buf = Encode(Packet{7, {100, 200}});
  for (std::size_t cut = 1; cut < buf.size(); ++cut) {
    std::vector<std::uint8_t> shorter(buf.begin(), buf.begin() + cut);
    EXPECT_FALSE(Decode(shorter).has_value()) << "cut=" << cut;
  }
}

TEST(PacketCodec, TrailingGarbageRejected) {
  auto buf = Encode(Packet{7, {5}});
  buf.push_back(0);
  EXPECT_FALSE(Decode(buf).has_value());
}

TEST(PacketCodec, ToStringIsReadable) {
  EXPECT_EQ(ToString(Packet{3, {7, 42}}), "type=3 [7, 42]");
  EXPECT_EQ(ToString(Packet{9, {}}), "type=9 []");
}

}  // namespace
}  // namespace celect::wire
