// Tests for the analysis layer: systematic interleaving exploration
// (tentpole) and the invariant registry it checks along the way.
#include <gtest/gtest.h>

#include <iostream>
#include <memory>

#include "celect/analysis/explorer.h"
#include "celect/analysis/invariants.h"
#include "celect/harness/chaos.h"
#include "celect/harness/experiment.h"
#include "celect/proto/common.h"
#include "celect/proto/nosod/protocol_d.h"
#include "celect/proto/nosod/protocol_e.h"

namespace celect::analysis {
namespace {

// Every node is a base node waking at time 0; identities ascend. Fixed
// seed keeps the factory deterministic — a hard requirement of the
// explorer. `bases` > 0 restricts the base set (fewer concurrent
// candidates keeps the trace space exhaustible at N=4).
ConfigFactory SmallNetwork(std::uint32_t n, std::uint32_t bases = 0) {
  return [n, bases] {
    harness::RunOptions o;
    o.n = n;
    o.seed = 7;
    o.mapper = harness::MapperKind::kRandom;
    if (bases > 0) {
      o.wakeup = harness::WakeupKind::kRandomSubset;
      o.wakeup_count = bases;
    }
    return harness::BuildNetwork(o);
  };
}

// Everything the paper guarantees over *arbitrary* schedules: unique
// leader, monotone per-node progress, message conservation, termination
// at quiescence. leader_is_max_id stays off — the explorer itself shows
// it is not schedule-invariant: a delivery may legally outrace a
// spontaneous wakeup, barring the max-id node from candidacy (and the
// (level, id) contests of the capture protocols can out-level the max id
// regardless).
InvariantOptions ExploreInvariants() {
  InvariantOptions io;
  io.unique_leader = true;
  io.leader_is_max_id = false;
  io.monotone_observables = true;
  io.message_conservation = true;
  io.quiescence_termination = true;
  return io;
}

// ---- Exhaustive exploration of the paper's protocols -----------------

// (protocol, N, base nodes; 0 = every node). N=4 runs restrict to two
// base nodes: with four concurrent broadcasters the Mazurkiewicz-trace
// count exceeds any practical budget, and two candidates already cover
// every contested race (capture vs. capture, delivery vs. wakeup).
class ExhaustiveTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, std::uint32_t, std::uint32_t>> {
 protected:
  static sim::ProcessFactory Factory(const std::string& name) {
    if (name == "D") return proto::nosod::MakeProtocolD();
    return proto::nosod::MakeProtocolE();
  }
};

TEST_P(ExhaustiveTest, AllSchedulesSatisfyEveryInvariant) {
  const auto& [name, n, bases] = GetParam();
  ExplorerOptions opt;
  opt.invariants = ExploreInvariants();
  ExploreResult res = Explore(Factory(name), SmallNetwork(n, bases), opt);
  ASSERT_TRUE(res.ok()) << "schedule " << res.counterexample->schedule
                        << ": " << res.counterexample->violations[0];
  EXPECT_FALSE(res.stats.budget_exhausted);
  // A real state space was walked, not a single trace.
  EXPECT_GT(res.stats.schedules, 1u);
  EXPECT_GT(res.stats.branch_points, 0u);
  std::cout << "[ explored ] protocol " << name << " N=" << n << ": "
            << res.stats.schedules << " maximal schedules, "
            << res.stats.events << " events, " << res.stats.sleep_pruned
            << " sleep-pruned branches, max enabled set "
            << res.stats.max_enabled << "\n";
}

INSTANTIATE_TEST_SUITE_P(
    SmallComplete, ExhaustiveTest,
    ::testing::Values(std::make_tuple("D", 3u, 0u),
                      std::make_tuple("D", 4u, 2u),
                      std::make_tuple("E", 3u, 0u),
                      std::make_tuple("E", 4u, 2u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

// ---- A seeded bug the explorer must find -----------------------------

// Deliberately broken election: the two highest-id nodes broadcast a
// claim, every other node grants the *first* claim it hears, and a
// candidate declares on its *first* grant (instead of a full quorum).
// The FIFO-friendly schedule elects once — both granters hear the same
// candidate first — so only a genuinely reordered schedule (each granter
// hearing a different candidate first) exposes the double election.
constexpr std::uint16_t kClaim = 1;
constexpr std::uint16_t kGrant = 2;

class BrokenToyNode : public proto::ElectionProcess {
 public:
  explicit BrokenToyNode(const sim::ProcessInit& init)
      : id_(init.id), n_(init.n) {}

  sim::ProtocolObservables Observe() const override {
    sim::ProtocolObservables obs;
    obs.monotone = {{"granted", granted_ ? 1 : 0},
                    {"declared", declared_ ? 1 : 0}};
    return obs;
  }

 protected:
  void OnSpontaneousWakeup(sim::Context& ctx) override {
    if (Candidate()) ctx.SendAll(wire::Packet{kClaim, {id_}});
  }

  void OnPacket(sim::Context& ctx, sim::Port from_port,
                const wire::Packet& p, bool /*first_contact*/) override {
    switch (p.type) {
      case kClaim:
        if (!Candidate() && !granted_) {
          granted_ = true;
          ctx.Send(from_port, wire::Packet{kGrant, {}});
        }
        break;
      case kGrant:
        if (!declared_) {
          declared_ = true;
          ctx.DeclareLeader();  // BUG: one grant is not a quorum
        }
        break;
      default:
        break;
    }
  }

 private:
  bool Candidate() const {
    return id_ > static_cast<sim::Id>(n_) - 2;  // the two largest ids
  }

  const sim::Id id_;
  const std::uint32_t n_;
  bool granted_ = false;
  bool declared_ = false;
};

sim::ProcessFactory MakeBrokenToy() {
  return [](const sim::ProcessInit& init) {
    return std::make_unique<BrokenToyNode>(init);
  };
}

TEST(ExplorerBugHunt, FindsTheDoubleElection) {
  ExplorerOptions opt;
  opt.invariants.unique_leader = true;
  ExploreResult res = Explore(MakeBrokenToy(), SmallNetwork(4), opt);
  ASSERT_FALSE(res.ok()) << "the seeded bug went undetected";
  const Counterexample& cex = *res.counterexample;
  ASSERT_FALSE(cex.violations.empty());
  EXPECT_NE(cex.violations[0].find(kInvMultipleLeaders), std::string::npos)
      << cex.violations[0];
  EXPECT_FALSE(cex.schedule.empty());
  std::cout << "[ found ] minimal counterexample schedule: " << cex.schedule
            << "\n";
}

TEST(ExplorerBugHunt, CounterexampleReplaysBitForBit) {
  ExplorerOptions opt;
  opt.invariants.unique_leader = true;
  ExploreResult res = Explore(MakeBrokenToy(), SmallNetwork(4), opt);
  ASSERT_FALSE(res.ok());

  // The emitted choice string round-trips and reproduces the violation.
  const auto choices = ScheduleFromString(res.counterexample->schedule);
  EXPECT_EQ(choices, res.counterexample->choices);
  ReplayOutcome a = ReplaySchedule(MakeBrokenToy(), SmallNetwork(4), choices,
                                   opt.invariants);
  ReplayOutcome b = ReplaySchedule(MakeBrokenToy(), SmallNetwork(4), choices,
                                   opt.invariants);
  EXPECT_FALSE(a.violations.empty());
  EXPECT_GT(a.result.leader_declarations, 1u);
  EXPECT_EQ(harness::FingerprintResult(a.result),
            harness::FingerprintResult(b.result));
}

TEST(ExplorerBugHunt, ShrunkScheduleIsMinimal) {
  ExplorerOptions opt;
  opt.invariants.unique_leader = true;
  ExploreResult res = Explore(MakeBrokenToy(), SmallNetwork(4), opt);
  ASSERT_FALSE(res.ok());
  const auto& choices = res.counterexample->choices;
  ASSERT_FALSE(choices.empty());
  // 1-minimality: zeroing any single remaining nonzero choice loses the
  // violation — every digit of the repro is load-bearing.
  EXPECT_NE(choices.back(), 0u);
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (choices[i] == 0) continue;
    auto weakened = choices;
    weakened[i] = 0;
    EXPECT_TRUE(ReplaySchedule(MakeBrokenToy(), SmallNetwork(4), weakened,
                               opt.invariants)
                    .violations.empty())
        << "choice " << i << " was droppable";
  }
}

// ---- Schedule string codec -------------------------------------------

TEST(ScheduleCodec, RoundTrips) {
  const std::vector<std::uint32_t> empty;
  EXPECT_EQ(ScheduleToString(empty), "");
  EXPECT_EQ(ScheduleFromString(""), empty);
  const std::vector<std::uint32_t> c{2, 0, 1, 15};
  EXPECT_EQ(ScheduleToString(c), "2.0.1.15");
  EXPECT_EQ(ScheduleFromString("2.0.1.15"), c);
}

TEST(ScheduleCodec, AnyStringIsAValidSchedule) {
  // Out-of-range and too-long choice strings clamp instead of crashing,
  // so a repro pasted from a different build still replays.
  ReplayOutcome out = ReplaySchedule(
      proto::nosod::MakeProtocolD(), SmallNetwork(3),
      ScheduleFromString("99.99.99.99.99.99.99.99.99.99.99.99.99.99"),
      ExploreInvariants());
  EXPECT_EQ(out.result.leader_declarations, 1u);
  EXPECT_TRUE(out.violations.empty());
}

// ---- Replay determinism on a healthy protocol ------------------------

TEST(ExplorerReplay, SameChoicesSameFingerprint) {
  const std::vector<std::uint32_t> choices{1, 0, 2, 1};
  ReplayOutcome a = ReplaySchedule(proto::nosod::MakeProtocolE(),
                                   SmallNetwork(4), choices);
  ReplayOutcome b = ReplaySchedule(proto::nosod::MakeProtocolE(),
                                   SmallNetwork(4), choices);
  EXPECT_EQ(harness::FingerprintResult(a.result),
            harness::FingerprintResult(b.result));
  EXPECT_TRUE(a.violations.empty());
}

// ---- The registry in observational mode ------------------------------

TEST(InvariantRegistry, CleanSeededRunReportsNothing) {
  // A time-ordered seeded run: every wakeup precedes every delivery, so
  // even the max-id claim holds here (unlike under the explorer).
  InvariantOptions io = ExploreInvariants();
  io.leader_is_max_id = true;
  InvariantRegistry registry(io);
  harness::RunOptions o;
  o.n = 8;
  o.seed = 3;
  sim::RuntimeOptions rt;
  rt.observer = &registry;
  sim::Runtime runtime(harness::BuildNetwork(o),
                       proto::nosod::MakeProtocolD(), rt);
  sim::RunResult r = runtime.Run();
  EXPECT_EQ(r.leader_declarations, 1u);
  EXPECT_TRUE(registry.ok()) << registry.Summary();
  EXPECT_EQ(r.invariant_violations, 0u);
}

TEST(InvariantRegistry, ViolationsSurfaceAsPerCauseCounters) {
  // Drive the broken toy down its bad schedule through the plain replay
  // API and check the tallies mirror the drop-counter convention.
  ExplorerOptions opt;
  opt.invariants.unique_leader = true;
  ExploreResult res = Explore(MakeBrokenToy(), SmallNetwork(4), opt);
  ASSERT_FALSE(res.ok());
  ReplayOutcome out =
      ReplaySchedule(MakeBrokenToy(), SmallNetwork(4),
                     res.counterexample->choices, opt.invariants);
  EXPECT_GE(out.result.invariant_violations, 1u);
  const std::string key = std::string("invariant.") + kInvMultipleLeaders;
  ASSERT_TRUE(out.result.counters.count(key));
  EXPECT_GE(out.result.counters.at(key), 1);
}

}  // namespace
}  // namespace celect::analysis
