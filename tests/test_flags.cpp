#include "celect/util/flags.h"

#include <gtest/gtest.h>

namespace celect {
namespace {

Flags Make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  Flags f = Make({"--n=64", "--name=foo"});
  EXPECT_EQ(f.GetInt("n", 0, ""), 64);
  EXPECT_EQ(f.GetString("name", "", ""), "foo");
}

TEST(Flags, SpaceForm) {
  Flags f = Make({"--n", "128"});
  EXPECT_EQ(f.GetInt("n", 0, ""), 128);
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f = Make({});
  EXPECT_EQ(f.GetInt("n", 42, ""), 42);
  EXPECT_EQ(f.GetString("s", "dft", ""), "dft");
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 2.5, ""), 2.5);
  EXPECT_TRUE(f.GetBool("b", true, ""));
}

TEST(Flags, BareFlagIsTrue) {
  Flags f = Make({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false, ""));
}

TEST(Flags, BoolSpellings) {
  EXPECT_TRUE(Make({"--x=true"}).GetBool("x", false, ""));
  EXPECT_TRUE(Make({"--x=1"}).GetBool("x", false, ""));
  EXPECT_TRUE(Make({"--x=yes"}).GetBool("x", false, ""));
  EXPECT_FALSE(Make({"--x=false"}).GetBool("x", true, ""));
  EXPECT_FALSE(Make({"--x=0"}).GetBool("x", true, ""));
}

TEST(Flags, NegativeAndDoubleValues) {
  Flags f = Make({"--a=-5", "--b=0.25"});
  EXPECT_EQ(f.GetInt("a", 0, ""), -5);
  EXPECT_DOUBLE_EQ(f.GetDouble("b", 0, ""), 0.25);
}

TEST(Flags, PositionalCollected) {
  Flags f = Make({"pos1", "--n=2", "pos2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_EQ(f.positional()[1], "pos2");
}

TEST(Flags, HelpRequested) {
  Flags f = Make({"--help"});
  EXPECT_TRUE(f.help_requested());
  f.GetInt("n", 3, "node count");
  std::string help = f.HelpText();
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("node count"), std::string::npos);
}

TEST(Flags, HasDetectsPresence) {
  Flags f = Make({"--n=1"});
  EXPECT_TRUE(f.Has("n"));
  EXPECT_FALSE(f.Has("m"));
}

}  // namespace
}  // namespace celect
