#include "celect/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace celect {
namespace {

TEST(Summary, EmptyDefaults) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMeanAndVariance) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(Summary, MergeMatchesSequential) {
  Summary all, a, b;
  for (int i = 0; i < 100; ++i) {
    double v = std::sin(i) * 10;
    all.Add(v);
    (i % 2 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Summary b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(FitPowerLaw, RecoversExactExponent) {
  std::vector<double> xs, ys;
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    xs.push_back(x);
    ys.push_back(3.5 * std::pow(x, 1.7));
  }
  auto fit = FitPowerLaw(xs, ys);
  EXPECT_TRUE(fit.valid);
  EXPECT_NEAR(fit.alpha, 1.7, 1e-9);
  EXPECT_NEAR(fit.constant, 3.5, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitPowerLaw, AllEqualAbscissaIsInvalid) {
  // Every x identical: the log-log regression has zero x-variance, so no
  // exponent is identifiable. Used to silently divide by zero.
  std::vector<double> xs{8, 8, 8, 8}, ys{1, 2, 3, 4};
  auto fit = FitPowerLaw(xs, ys);
  EXPECT_FALSE(fit.valid);
}

TEST(FitPowerLaw, ConstantOrdinateHasHonestRSquared) {
  // ys carry no variance (ss_tot == 0). A constant model fits perfectly,
  // so r² must report 1, not NaN from 0/0.
  std::vector<double> xs{2, 4, 8, 16}, ys{5, 5, 5, 5};
  auto fit = FitPowerLaw(xs, ys);
  EXPECT_TRUE(fit.valid);
  EXPECT_NEAR(fit.alpha, 0.0, 1e-12);
  EXPECT_NEAR(fit.constant, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
  EXPECT_FALSE(std::isnan(fit.r_squared));
}

TEST(FitPowerLaw, LinearDataHasAlphaOne) {
  std::vector<double> xs{10, 20, 40, 80}, ys{30, 60, 120, 240};
  auto fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.alpha, 1.0, 1e-9);
}

TEST(FitPowerLaw, QuadraticDataHasAlphaTwo) {
  std::vector<double> xs{4, 8, 16, 32}, ys;
  for (double x : xs) ys.push_back(0.5 * x * x);
  auto fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.alpha, 2.0, 1e-9);
}

TEST(FitLogSlope, RecoversSlope) {
  std::vector<double> xs{2, 4, 8, 16, 32}, ys;
  for (double x : xs) ys.push_back(7.0 + 3.0 * std::log2(x));
  EXPECT_NEAR(FitLogSlope(xs, ys), 3.0, 1e-9);
}

TEST(FitLogSlope, FlatDataHasZeroSlope) {
  std::vector<double> xs{2, 4, 8, 16}, ys{5, 5, 5, 5};
  EXPECT_NEAR(FitLogSlope(xs, ys), 0.0, 1e-12);
}

TEST(BoundConstant, FindsWorstRatio) {
  std::vector<double> xs{10, 20, 30}, ys{25, 44, 90};
  double c = BoundConstant(xs, ys, [](double x) { return x; });
  EXPECT_NEAR(c, 3.0, 1e-12);  // 90/30
}

TEST(Percentile, OrderStatistics) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 37.0), 42.0);
}

}  // namespace
}  // namespace celect
