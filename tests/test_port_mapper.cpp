#include "celect/sim/port_mapper.h"

#include <gtest/gtest.h>

#include <set>

#include "celect/adversary/adaptive_adversary.h"

namespace celect::sim {
namespace {

TEST(SodPortMapper, PortIsDistance) {
  SodPortMapper m(8);
  EXPECT_EQ(m.Resolve(0, 3), 3u);
  EXPECT_EQ(m.Resolve(6, 3), 1u);
  EXPECT_EQ(m.PortToward(6, 1), 3u);
  EXPECT_EQ(m.PortToward(1, 6), 5u);  // complementary label N - 3
}

TEST(SodPortMapper, FreshPortsScanInDistanceOrder) {
  SodPortMapper m(5);
  EXPECT_EQ(m.FreshPort(0), Port{1});
  m.MarkTraversed(0, 1);
  m.MarkTraversed(0, 2);
  EXPECT_EQ(m.FreshPort(0), Port{3});
  m.MarkTraversed(0, 3);
  m.MarkTraversed(0, 4);
  EXPECT_FALSE(m.FreshPort(0).has_value());
}

TEST(SodPortMapper, TraversalIsPerNode) {
  SodPortMapper m(4);
  m.MarkTraversed(0, 1);
  EXPECT_TRUE(m.IsTraversed(0, 1));
  EXPECT_FALSE(m.IsTraversed(1, 1));
}

TEST(RandomPortMapper, ResolveAndPortTowardAreInverse) {
  RandomPortMapper m(64, /*seed=*/99);
  for (NodeId node : {0u, 7u, 33u, 63u}) {
    std::set<NodeId> seen;
    for (Port p = 1; p <= 63; ++p) {
      NodeId v = m.Resolve(node, p);
      EXPECT_NE(v, node);
      EXPECT_LT(v, 64u);
      EXPECT_TRUE(seen.insert(v).second);
      EXPECT_EQ(m.PortToward(node, v), p);
    }
  }
}

TEST(RandomPortMapper, DifferentSeedsGiveDifferentLayouts) {
  RandomPortMapper a(32, 1), b(32, 2);
  int same = 0;
  for (Port p = 1; p <= 31; ++p) {
    if (a.Resolve(5, p) == b.Resolve(5, p)) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(RandomPortMapper, PermutationIsNotIdentityLike) {
  RandomPortMapper m(128, 7);
  int fixed = 0;
  for (Port p = 1; p <= 127; ++p) {
    if (m.Resolve(0, p) == p) ++fixed;
  }
  EXPECT_LT(fixed, 20);
}

}  // namespace
}  // namespace celect::sim

namespace celect::adversary {
namespace {

using sim::NodeId;
using sim::Port;

TEST(AdaptiveAdversary, UpFirstBindsAscendingNeighbours) {
  AdaptiveAdversaryMapper m(16, UpFirstStrategy(16, 3));
  // Node 5's first three fresh sends must go to 6, 7, 8.
  for (NodeId expect : {6u, 7u, 8u}) {
    auto port = m.FreshPort(5);
    ASSERT_TRUE(port.has_value());
    EXPECT_EQ(m.Resolve(5, *port), expect);
    m.MarkTraversed(5, *port);
  }
  // Then the Down set: 4, 3, 2.
  for (NodeId expect : {4u, 3u, 2u}) {
    auto port = m.FreshPort(5);
    EXPECT_EQ(m.Resolve(5, *port), expect);
    m.MarkTraversed(5, *port);
  }
}

TEST(AdaptiveAdversary, BindingIsConsistentBothWays) {
  AdaptiveAdversaryMapper m(8, UpFirstStrategy(8, 2));
  auto port = m.FreshPort(3);
  NodeId v = m.Resolve(3, *port);
  Port back = m.PortToward(v, 3);
  EXPECT_EQ(m.Resolve(v, back), 3u);
  EXPECT_EQ(m.PortToward(3, v), *port);
}

TEST(AdaptiveAdversary, EveryNeighbourBoundOnce) {
  AdaptiveAdversaryMapper m(10, UpFirstStrategy(10, 4));
  std::set<NodeId> seen;
  for (Port p = 1; p <= 9; ++p) {
    NodeId v = m.Resolve(4, p);
    EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_FALSE(seen.count(4));
}

TEST(AdaptiveAdversary, EdgeNodesFallBackPastTheLine) {
  // Node N-1 has no Up neighbours; it must bind Down first.
  AdaptiveAdversaryMapper m(8, UpFirstStrategy(8, 2));
  auto port = m.FreshPort(7);
  EXPECT_EQ(m.Resolve(7, *port), 6u);
}

TEST(AdaptiveAdversary, TracksMaxBoundDistance) {
  AdaptiveAdversaryMapper m(32, UpFirstStrategy(32, 2));
  m.Resolve(10, *m.FreshPort(10));  // binds 10–11
  EXPECT_EQ(m.MaxBoundDistance(), 1u);
  m.PortToward(0, 20);  // a faraway delivery binds 0–20
  EXPECT_EQ(m.MaxBoundDistance(), 20u);
}

TEST(AdaptiveAdversary, RandomStrategyIsValid) {
  AdaptiveAdversaryMapper m(12, RandomStrategy(12, 5));
  std::set<NodeId> seen;
  for (Port p = 1; p <= 11; ++p) {
    NodeId v = m.Resolve(3, p);
    EXPECT_NE(v, 3u);
    EXPECT_TRUE(seen.insert(v).second);
  }
}

TEST(AdaptiveAdversary, BoundDegreeCountsBindings) {
  AdaptiveAdversaryMapper m(8, UpFirstStrategy(8, 2));
  EXPECT_EQ(m.BoundDegree(2), 0u);
  m.Resolve(2, *m.FreshPort(2));
  EXPECT_EQ(m.BoundDegree(2), 1u);
}

}  // namespace
}  // namespace celect::adversary
