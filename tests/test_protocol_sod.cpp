// Protocol-level tests for the sense-of-direction family: LMW86, A, A′,
// B, C (paper §3).
#include <gtest/gtest.h>

#include <cmath>

#include "celect/proto/sod/lmw86.h"
#include "celect/proto/sod/protocol_a.h"
#include "celect/proto/sod/protocol_a_prime.h"
#include "celect/proto/sod/protocol_b.h"
#include "celect/proto/sod/protocol_c.h"
#include "test_util.h"

namespace celect::proto::sod {
namespace {

using harness::DelayKind;
using harness::MapperKind;
using harness::RunOptions;
using harness::WakeupKind;
using test::RunAndCheck;

RunOptions SodOptions(std::uint32_t n) {
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kSenseOfDirection;
  return o;
}

TEST(DivisorNearestSqrt, PicksReasonableDivisors) {
  EXPECT_EQ(DivisorNearestSqrt(16), 4u);
  EXPECT_EQ(DivisorNearestSqrt(64), 8u);
  EXPECT_EQ(DivisorNearestSqrt(12), 3u);  // sqrt≈3.46; 3 is the nearer divisor
  EXPECT_EQ(DivisorNearestSqrt(7), 1u);   // prime: 1 is nearer to √7 than 7
  EXPECT_EQ(DivisorNearestSqrt(100), 10u);
}

TEST(ResolveStride, RejectsNonDivisorMinorityK) {
  ProtocolAParams p;
  p.k = 5;
  EXPECT_DEATH(ResolveProtocolAStride(16, p), "divide");
}

TEST(ResolveStride, AcceptsMajorityNonDivisor) {
  ProtocolAParams p;
  p.k = 9;  // 2k >= 16: LMW86-style majority
  EXPECT_EQ(ResolveProtocolAStride(16, p), 9u);
}

TEST(Lmw86, ElectsUniqueLeaderAcrossSizes) {
  for (std::uint32_t n : {2u, 3u, 5u, 8u, 16u, 33u, 64u}) {
    auto o = SodOptions(n);
    RunAndCheck(MakeLmw86(), o);
  }
}

TEST(Lmw86, MessageComplexityIsLinear) {
  for (std::uint32_t n : {32u, 64u, 128u, 256u}) {
    auto o = SodOptions(n);
    auto r = RunAndCheck(MakeLmw86(), o);
    EXPECT_LE(r.total_messages, 8u * n) << "n=" << n;
  }
}

TEST(ProtocolA, ElectsUniqueLeaderAcrossSizesAndK) {
  for (std::uint32_t n : {4u, 8u, 16u, 64u}) {
    for (std::uint32_t k : {1u, 2u, 4u}) {
      if (n % k != 0) continue;
      ProtocolAParams p;
      p.k = k;
      auto o = SodOptions(n);
      RunAndCheck(MakeProtocolA(p), o);
    }
  }
}

TEST(ProtocolA, DefaultStrideKeepsMessagesLinear) {
  for (std::uint32_t n : {64u, 144u, 256u}) {
    auto o = SodOptions(n);
    auto r = RunAndCheck(MakeProtocolA({}), o);
    EXPECT_LE(r.total_messages, 10u * n) << "n=" << n;
  }
}

TEST(ProtocolA, RandomDelaysAndSubsets) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto o = SodOptions(32);
    o.seed = seed;
    o.delay = DelayKind::kRandom;
    o.wakeup = WakeupKind::kRandomSubset;
    o.wakeup_count = 1 + static_cast<std::uint32_t>(seed % 31);
    o.wakeup_window = 2.0;
    o.identity = harness::IdentityKind::kRandomPermutation;
    RunAndCheck(MakeProtocolA({}), o);
  }
}

TEST(ProtocolA, StaggeredChainIsSlowLinearTime) {
  // §3 pathology: ascending identities around the ring, node p waking at
  // 0.9p. Every capture by a smaller identity is contested away and the
  // winner is the last node to wake, so time grows linearly with N.
  for (std::uint32_t n : {16u, 32u, 64u}) {
    auto o = SodOptions(n);
    o.wakeup = WakeupKind::kStaggeredChain;
    o.stagger_spacing = 0.9;
    auto r = RunAndCheck(MakeProtocolA({}), o);
    EXPECT_GE(r.leader_time.ToDouble(), 0.9 * (n - 1)) << "n=" << n;
  }
}

TEST(ProtocolAPrime, StaggeredChainIsFast) {
  // A′'s awaken wave bars late spontaneous wakeups; time stays
  // O(k + N/k) ≈ O(√N) even under the chain.
  for (std::uint32_t n : {16u, 64u, 256u}) {
    auto o = SodOptions(n);
    o.wakeup = WakeupKind::kStaggeredChain;
    o.stagger_spacing = 0.9;
    auto r = RunAndCheck(MakeProtocolAPrime(), o);
    double sqrt_n = std::sqrt(static_cast<double>(n));
    EXPECT_LE(r.leader_time.ToDouble(), 12.0 * sqrt_n) << "n=" << n;
  }
}

TEST(ProtocolAPrime, UniqueLeaderUnderRandomness) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto o = SodOptions(64);
    o.seed = seed;
    o.delay = DelayKind::kRandom;
    o.identity = harness::IdentityKind::kSparse;
    RunAndCheck(MakeProtocolAPrime(), o);
  }
}

TEST(ProtocolB, ElectsUniqueLeaderOnPowersOfTwo) {
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    auto o = SodOptions(n);
    RunAndCheck(MakeProtocolB(), o);
  }
}

TEST(ProtocolB, LogTimeWhenAllWakeTogether) {
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    auto o = SodOptions(n);
    auto r = RunAndCheck(MakeProtocolB(), o);
    double log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(r.leader_time.ToDouble(), 4.0 * log_n + 6) << "n=" << n;
  }
}

TEST(ProtocolB, MessagesAreNLogN) {
  for (std::uint32_t n : {64u, 256u}) {
    auto o = SodOptions(n);
    auto r = RunAndCheck(MakeProtocolB(), o);
    double log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(r.total_messages, 4.0 * n * log_n) << "n=" << n;
    // And it genuinely exceeds linear — B is not message optimal.
    EXPECT_GE(r.total_messages, 1.5 * n) << "n=" << n;
  }
}

TEST(ProtocolC, ElectsUniqueLeaderOnPowersOfTwo) {
  for (std::uint32_t n : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    auto o = SodOptions(n);
    RunAndCheck(MakeProtocolC(), o);
  }
}

TEST(ProtocolC, MessagesAreLinear) {
  for (std::uint32_t n : {64u, 256u, 1024u}) {
    auto o = SodOptions(n);
    auto r = RunAndCheck(MakeProtocolC(), o);
    EXPECT_LE(r.total_messages, 12u * n) << "n=" << n;
  }
}

TEST(ProtocolC, TimeIsLogarithmic) {
  for (std::uint32_t n : {64u, 256u, 1024u}) {
    auto o = SodOptions(n);
    auto r = RunAndCheck(MakeProtocolC(), o);
    double log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(r.leader_time.ToDouble(), 10.0 * log_n) << "n=" << n;
  }
}

TEST(ProtocolC, ClassWinnersBounded) {
  auto o = SodOptions(256);
  auto r = RunAndCheck(MakeProtocolC(), o);
  // At most one winner per residue class; k classes of size N/k.
  auto it = r.counters.find(kCounterClassWinners);
  ASSERT_NE(it, r.counters.end());
  EXPECT_LE(it->second, 256 / 2);  // k = N / 2^⌈loglogN⌉ < N/2
}

TEST(ProtocolC, RandomSeedsSubsetsAndIdentities) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto o = SodOptions(64);
    o.seed = seed;
    o.delay = seed % 2 ? DelayKind::kRandom : DelayKind::kUnit;
    o.wakeup = WakeupKind::kRandomSubset;
    o.wakeup_count = 1 + static_cast<std::uint32_t>((seed * 7) % 63);
    o.wakeup_window = 3.0;
    o.identity = harness::IdentityKind::kRandomPermutation;
    RunAndCheck(MakeProtocolC(), o);
  }
}

TEST(ProtocolC, SingleBaseNodeWins) {
  auto o = SodOptions(64);
  o.wakeup = WakeupKind::kSingle;
  auto r = RunAndCheck(MakeProtocolC(), o);
  EXPECT_EQ(r.leader_id, sim::Id{1});  // node 0's ascending identity
}

TEST(Lmw86AndAPrime, AgreeOnWinnerForSameNetwork) {
  // Different protocols, same deterministic network with simultaneous
  // wakeup: both must elect *a* unique leader (not necessarily equal).
  auto o = SodOptions(32);
  auto r1 = RunAndCheck(MakeLmw86(), o);
  auto r2 = RunAndCheck(MakeProtocolAPrime(), o);
  EXPECT_TRUE(r1.leader_id.has_value());
  EXPECT_TRUE(r2.leader_id.has_value());
}

}  // namespace
}  // namespace celect::proto::sod
