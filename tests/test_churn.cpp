// Churn: the continuous election service under crash/rejoin cycling.
// Covers the FaultPlan churn-ordering validation, the seeded churn
// harness (bit-reproducibility, thread-count invariance, safety and
// liveness of the lease layer), and exhaustive exploration of the
// at-most-one-lease-holder invariant at N = 3 with one crash + rejoin.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <set>

#include "celect/analysis/explorer.h"
#include "celect/analysis/invariants.h"
#include "celect/harness/churn.h"
#include "celect/harness/experiment.h"
#include "celect/proto/nosod/lease_engine.h"
#include "celect/sim/fault.h"
#include "celect/sim/runtime.h"

// --- ValidateFaultPlan: churn ordering rules --------------------------

namespace celect::sim {
namespace {

CrashSpec TimedCrash(NodeId node, std::int64_t units) {
  CrashSpec spec;
  spec.node = node;
  spec.trigger = CrashSpec::Trigger::kAtTime;
  spec.at = Time::FromUnits(units);
  return spec;
}

TEST(ChurnPlanDeathTest, RejectsARejoinAtTheInstantOfACrash) {
  // Rule 1: tie-breaking "did it come back?" by schedule order would
  // make the plan's meaning depend on construction order.
  FaultPlan plan;
  plan.crashes.push_back(TimedCrash(1, 2));
  plan.rejoins.push_back({1, Time::FromUnits(2)});
  EXPECT_DEATH(ValidateFaultPlan(plan, 4), "");
}

TEST(ChurnPlanDeathTest, RejectsTwoRejoinsWithoutAnInterveningCrash) {
  // Rule 2: the second rejoin can never fire.
  FaultPlan plan;
  plan.crashes.push_back(TimedCrash(1, 1));
  plan.rejoins.push_back({1, Time::FromUnits(2)});
  plan.rejoins.push_back({1, Time::FromUnits(3)});
  EXPECT_DEATH(ValidateFaultPlan(plan, 4), "");
}

TEST(ChurnPlanDeathTest, RejectsTwoTimedCrashesWithoutAnInterveningRejoin) {
  // Rule 2 again: the second crash is dead-on-arrival. Only enforced
  // for nodes with rejoins — crash-only plans predate churn and allow
  // redundant specs.
  FaultPlan plan;
  plan.crashes.push_back(TimedCrash(1, 1));
  plan.crashes.push_back(TimedCrash(1, 2));
  plan.rejoins.push_back({1, Time::FromUnits(3)});
  EXPECT_DEATH(ValidateFaultPlan(plan, 4), "");
}

TEST(ChurnPlanDeathTest, RejectsALeadingRejoinWithoutATriggeredCrash) {
  // Rule 3: nothing could have killed the node before its first timed
  // event, so the rejoin would always no-op.
  FaultPlan plan;
  plan.rejoins.push_back({1, Time::FromUnits(1)});
  EXPECT_DEATH(ValidateFaultPlan(plan, 4), "");
}

TEST(ChurnPlan, LeadingRejoinIsLegalWithATriggeredCrash) {
  // A count-triggered crash plausibly fired before the rejoin time.
  FaultPlan plan;
  CrashSpec spec;
  spec.node = 1;
  spec.trigger = CrashSpec::Trigger::kAfterSends;
  spec.count = 2;
  plan.crashes.push_back(spec);
  plan.rejoins.push_back({1, Time::FromUnits(1)});
  ValidateFaultPlan(plan, 4);  // must not CHECK-fail
}

TEST(ChurnPlan, AlternatingCycleIsLegal) {
  FaultPlan plan;
  plan.crashes.push_back(TimedCrash(2, 1));
  plan.rejoins.push_back({2, Time::FromUnits(2)});
  plan.crashes.push_back(TimedCrash(2, 3));
  plan.rejoins.push_back({2, Time::FromUnits(4)});
  ValidateFaultPlan(plan, 4);  // must not CHECK-fail
}

}  // namespace
}  // namespace celect::sim

// --- The churn harness ------------------------------------------------

namespace celect::harness {
namespace {

TEST(ChurnPlan, SeededPlanIsDeterministicAndWellFormed) {
  ChurnOptions opt;
  opt.n = 16;
  opt.churn_nodes = 4;
  for (std::uint64_t seed : {1ull, 9ull, 333ull}) {
    const sim::FaultPlan a = MakeChurnPlan(seed, opt);
    const sim::FaultPlan b = MakeChurnPlan(seed, opt);
    ASSERT_EQ(a.crashes.size(), b.crashes.size());
    for (std::size_t i = 0; i < a.crashes.size(); ++i) {
      EXPECT_EQ(a.crashes[i].node, b.crashes[i].node);
      EXPECT_EQ(a.crashes[i].at, b.crashes[i].at);
    }
    ASSERT_EQ(a.rejoins.size(), b.rejoins.size());
    for (std::size_t i = 0; i < a.rejoins.size(); ++i) {
      EXPECT_EQ(a.rejoins[i].node, b.rejoins[i].node);
      EXPECT_EQ(a.rejoins[i].at, b.rejoins[i].at);
    }
    // Exactly the shape ValidateFaultPlan admits (it CHECK-fails
    // otherwise), cycling the requested number of distinct victims.
    sim::ValidateFaultPlan(a, opt.n);
    std::set<sim::NodeId> victims;
    for (const auto& crash : a.crashes) victims.insert(crash.node);
    EXPECT_EQ(victims.size(), opt.churn_nodes);
  }
}

TEST(ChurnHarness, SameSeedIsBitReproducible) {
  ChurnOptions opt;
  opt.n = 12;
  opt.churn_nodes = 3;
  opt.loss = 0.02;
  opt.lease.horizon = sim::Time::FromUnits(30);
  opt.lease.max_renewals = 2;
  for (std::uint64_t seed : {1ull, 42ull, 512ull}) {
    const ChurnCaseResult a = RunChurnCase(seed, opt);
    const ChurnCaseResult b = RunChurnCase(seed, opt);
    EXPECT_EQ(FingerprintResult(a.result), FingerprintResult(b.result))
        << "seed=" << seed;
    EXPECT_EQ(a.violation, b.violation);
    EXPECT_EQ(a.unavailable_ticks, b.unavailable_ticks);
    EXPECT_EQ(a.elections_completed, b.elections_completed);
    EXPECT_EQ(a.failed_after, b.failed_after);
  }
}

TEST(ChurnHarness, SweepIsThreadCountInvariant) {
  ChurnOptions opt;
  opt.n = 12;
  opt.churn_nodes = 3;
  opt.lease.horizon = sim::Time::FromUnits(20);
  opt.lease.max_renewals = 2;

  opt.threads = 1;
  const ChurnSweepResult serial = SweepChurn(100, 6, opt);
  opt.threads = 4;
  const ChurnSweepResult parallel = SweepChurn(100, 6, opt);

  EXPECT_EQ(serial.crashes_injected, parallel.crashes_injected);
  EXPECT_EQ(serial.rejoins, parallel.rejoins);
  EXPECT_EQ(serial.elections_completed, parallel.elections_completed);
  EXPECT_EQ(serial.unavailable_ticks, parallel.unavailable_ticks);
  EXPECT_EQ(serial.leases_granted, parallel.leases_granted);
  EXPECT_EQ(serial.leases_renewed, parallel.leases_renewed);
  EXPECT_EQ(serial.leases_expired, parallel.leases_expired);
  EXPECT_EQ(serial.leases_revoked, parallel.leases_revoked);
  EXPECT_EQ(serial.events_processed, parallel.events_processed);
  EXPECT_EQ(serial.messages.mean(), parallel.messages.mean());
  EXPECT_EQ(serial.telemetry, parallel.telemetry);
  ASSERT_EQ(serial.violations.size(), parallel.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].seed, parallel.violations[i].seed);
    EXPECT_EQ(serial.violations[i].violation,
              parallel.violations[i].violation);
  }
}

TEST(ChurnHarness, ServiceStaysSafeAndLiveUnderChurn) {
  ChurnOptions opt;
  opt.n = 16;
  opt.churn_nodes = 4;
  opt.loss = 0.01;
  opt.lease.horizon = sim::Time::FromUnits(60);
  opt.lease.max_renewals = 2;
  const ChurnCaseResult c = RunChurnCase(3, opt);
  EXPECT_TRUE(c.violation.empty()) << c.violation;
  // Back-to-back re-elections actually happened, through real churn.
  EXPECT_GE(c.elections_completed, 3u);
  const auto counter = [&c](const char* key) -> std::int64_t {
    const auto it = c.result.counters.find(key);
    return it == c.result.counters.end() ? 0 : it->second;
  };
  EXPECT_GT(counter("lease.granted"), 0);
  EXPECT_GT(counter("sim.rejoins"), 0);
  // The service was obtainable for part of the window but not all of
  // it (elections take time), and the two measures agree on bounds.
  EXPECT_GT(c.unavailable_ticks, 0);
  EXPECT_LT(c.unavailable_ticks, opt.lease.horizon.ticks());
  // The latency histogram carries one sample per completed election.
  EXPECT_EQ(c.election_latency.count(), c.elections_completed);
}

TEST(ChurnHarness, ChurnFreeServiceRenewsAndStepsDown) {
  // churn_nodes = 0 degenerates to an empty FaultPlan: the service just
  // grants, renews, voluntarily steps down, and re-elects until the
  // horizon — every reign ends in a revocation or the final expiry.
  ChurnOptions opt;
  opt.n = 8;
  opt.churn_nodes = 0;
  opt.lease.horizon = sim::Time::FromUnits(30);
  opt.lease.max_renewals = 2;
  const ChurnCaseResult c = RunChurnCase(5, opt);
  EXPECT_TRUE(c.violation.empty()) << c.violation;
  const auto counter = [&c](const char* key) -> std::int64_t {
    const auto it = c.result.counters.find(key);
    return it == c.result.counters.end() ? 0 : it->second;
  };
  EXPECT_GE(counter("lease.granted"), 2);
  EXPECT_GE(counter("lease.renewed"), 4);
  EXPECT_GE(counter("lease.revoked"), 1);
  // One closed coverage gap per reign: the gap before each grant.
  EXPECT_EQ(c.elections_completed,
            static_cast<std::uint64_t>(counter("lease.granted")));
  EXPECT_EQ(counter("sim.rejoins"), 0);
}

TEST(ChurnHarness, EffectiveLeaseParamsDeriveAFailureBudget) {
  ChurnOptions opt;
  opt.n = 16;
  opt.churn_nodes = 4;
  EXPECT_EQ(EffectiveLeaseParams(opt).f, 4u);
  // Capped at the FT engine's tolerance ceiling 2f < n - 1.
  opt.n = 8;
  opt.churn_nodes = 6;
  EXPECT_EQ(EffectiveLeaseParams(opt).f, 3u);
  // An explicit budget wins.
  opt.lease.f = 2;
  EXPECT_EQ(EffectiveLeaseParams(opt).f, 2u);
  // No churn, no derived budget.
  opt.lease.f = 0;
  opt.churn_nodes = 0;
  EXPECT_EQ(EffectiveLeaseParams(opt).f, 0u);
}

}  // namespace
}  // namespace celect::harness

// --- Exhaustive exploration: at most one lease holder -----------------

namespace celect::analysis {
namespace {

// N = 3, one base node, one timed crash + rejoin of node 0 early in the
// window. The lease timings put the nominate fuse inside the horizon
// but the first watchdog and renew timers outside it, so the space is
// one election + acquisition + the churn events — small enough to
// exhaust, rich enough that schedules exist where the crash lands
// mid-election, the rejoin outruns the crash (and legally no-ops), or
// the grant quorum races the expiry.
proto::nosod::LeaseParams ExploredLeaseParams() {
  proto::nosod::LeaseParams lease;
  lease.election_timeout = sim::Time::FromUnits(8);
  lease.lease_duration = sim::Time::FromUnits(8);
  lease.renew_interval = sim::Time::FromUnits(4);
  lease.horizon = sim::Time::FromUnits(8);
  return lease;
}

ConfigFactory ChurnedTriangle() {
  return [] {
    harness::RunOptions o;
    o.n = 3;
    o.seed = 7;
    o.mapper = harness::MapperKind::kRandom;
    o.wakeup = harness::WakeupKind::kRandomSubset;
    o.wakeup_count = 1;
    sim::FaultPlan plan;
    sim::CrashSpec spec;
    spec.node = 0;
    spec.trigger = sim::CrashSpec::Trigger::kAtTime;
    spec.at = sim::Time::FromTicks(2 * sim::Time::kTicksPerUnit / 5);
    plan.crashes.push_back(spec);
    plan.rejoins.push_back(
        {0, sim::Time::FromTicks(9 * sim::Time::kTicksPerUnit / 10)});
    o.fault_plan = plan;
    return harness::BuildNetwork(o);
  };
}

TEST(ChurnExplorer, EveryScheduleKeepsAtMostOneLeaseHolder) {
  ExplorerOptions opt;
  opt.invariants.unique_leader = false;  // the service re-elects by design
  opt.invariants.at_most_one_lease_holder = true;
  opt.invariants.monotone_observables = true;
  opt.invariants.message_conservation = true;
  ExploreResult res = Explore(proto::nosod::MakeLeaseEngine(ExploredLeaseParams()),
                              ChurnedTriangle(), opt);
  ASSERT_TRUE(res.ok()) << "schedule " << res.counterexample->schedule << ": "
                        << res.counterexample->violations[0];
  // A proof, not a sample — and of a real state space.
  EXPECT_FALSE(res.stats.budget_exhausted);
  EXPECT_GT(res.stats.schedules, 100u);
  EXPECT_GT(res.stats.branch_points, 0u);
  std::cout << "[ explored ] lease engine N=3 crash+rejoin: "
            << res.stats.schedules << " maximal schedules, "
            << res.stats.events << " events\n";
}

TEST(ChurnExplorer, ExploredConfigIsNotVacuous) {
  // The time-ordered seeded run of the exact explored configuration
  // grants a lease, revives the crashed node, and lets the final lease
  // expire — so the exploration above quantified over schedules where
  // the invariant has something to say.
  sim::Runtime runtime(ChurnedTriangle()(),
                       proto::nosod::MakeLeaseEngine(ExploredLeaseParams()));
  const sim::RunResult r = runtime.Run();
  const auto counter = [&r](const char* key) -> std::int64_t {
    const auto it = r.counters.find(key);
    return it == r.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("lease.granted"), 1);
  EXPECT_EQ(counter("sim.rejoins"), 1);
  EXPECT_EQ(counter("lease.expired"), 1);
  EXPECT_EQ(r.leader_declarations, 1u);
}

}  // namespace
}  // namespace celect::analysis
