// Property suite: the election safety and liveness invariants, swept
// across every protocol × delay model × wakeup pattern × identity
// assignment × seed. This is the main defence of the protocol
// implementations — each combination is an independent asynchronous
// execution, and in every single one exactly one node may declare
// itself leader.
#include <gtest/gtest.h>

#include <string>

#include "celect/harness/experiment.h"
#include "celect/harness/registry.h"
#include "test_util.h"

namespace celect::harness {
namespace {

struct PropertyCase {
  std::string protocol;
  std::uint32_t n;
  DelayKind delay;
  WakeupKind wakeup;
  IdentityKind identity;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os,
                                  const PropertyCase& c) {
    os << c.protocol << "_N" << c.n << "_d" << static_cast<int>(c.delay)
       << "_w" << static_cast<int>(c.wakeup) << "_i"
       << static_cast<int>(c.identity) << "_s" << c.seed;
    return os;
  }
};

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  const std::vector<std::string> protocols = {
      "lmw86", "A", "A'", "B", "C", "D", "E", "E-raw", "F", "G", "G2",
      "FT"};
  const std::vector<std::uint32_t> sizes = {4, 8, 16, 32};
  const std::vector<DelayKind> delays = {DelayKind::kUnit,
                                         DelayKind::kRandom,
                                         DelayKind::kEager};
  const std::vector<WakeupKind> wakeups = {WakeupKind::kAllAtZero,
                                           WakeupKind::kSingle,
                                           WakeupKind::kRandomSubset,
                                           WakeupKind::kStaggeredChain};
  const std::vector<IdentityKind> identities = {
      IdentityKind::kAscending, IdentityKind::kRandomPermutation};

  std::uint64_t seed = 0;
  for (const auto& proto : protocols) {
    for (auto n : sizes) {
      for (auto delay : delays) {
        for (auto wakeup : wakeups) {
          // One identity assignment per (delay, wakeup) pairing keeps the
          // matrix manageable while still mixing both in.
          IdentityKind identity =
              identities[(static_cast<int>(delay) +
                          static_cast<int>(wakeup)) %
                         identities.size()];
          cases.push_back(
              {proto, n, delay, wakeup, identity, ++seed});
        }
      }
    }
  }
  return cases;
}

class ElectionProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ElectionProperty, ExactlyOneLeaderAndQuiescence) {
  const PropertyCase& c = GetParam();
  auto spec = FindProtocol(c.protocol);
  ASSERT_TRUE(spec.has_value());

  RunOptions o;
  o.n = c.n;
  o.seed = c.seed;
  o.delay = c.delay;
  o.wakeup = c.wakeup;
  o.identity = c.identity;
  o.wakeup_count = 1 + static_cast<std::uint32_t>(c.seed % c.n);
  o.wakeup_window = 2.0;
  o.mapper = spec->needs_sense_of_direction ? MapperKind::kSenseOfDirection
                                            : MapperKind::kRandom;

  auto r = RunElection(spec->make(0), o);

  // Safety: at most one leader — and liveness: at least one.
  EXPECT_EQ(r.leader_declarations, 1u);
  ASSERT_TRUE(r.leader_id.has_value());
  // The leader's identity is one of the assigned identities (1..N for
  // ascending/permuted assignments).
  EXPECT_GE(*r.leader_id, 1);
  EXPECT_LE(*r.leader_id, static_cast<sim::Id>(c.n));
  // Quiescence is implied by RunElection returning within the event
  // budget; the declaration cannot postdate quiescence.
  EXPECT_LE(r.leader_time, r.quiesce_time);
  // Sanity cap: nothing should ever need more than ~N² + broadcast
  // messages on these small networks.
  EXPECT_LE(r.total_messages, 6ull * c.n * c.n + 64);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ElectionProperty,
                         ::testing::ValuesIn(MakeCases()));

// Messages always carry O(log N) bits: check the measured wire bytes per
// message across a representative run of each protocol.
class MessageSizeProperty
    : public ::testing::TestWithParam<std::string> {};

TEST_P(MessageSizeProperty, MessagesStaySmall) {
  auto spec = FindProtocol(GetParam());
  ASSERT_TRUE(spec.has_value());
  RunOptions o;
  o.n = 32;
  o.serialize_packets = true;  // full codec round-trip on every message
  o.mapper = spec->needs_sense_of_direction ? MapperKind::kSenseOfDirection
                                            : MapperKind::kRandom;
  auto r = RunElection(spec->make(0), o);
  ASSERT_GT(r.total_messages, 0u);
  double avg_bytes = static_cast<double>(r.total_bytes) /
                     static_cast<double>(r.total_messages);
  EXPECT_LE(avg_bytes, 24.0) << "messages must stay O(log N) bits";
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, MessageSizeProperty,
    ::testing::Values("lmw86", "A", "A'", "B", "C", "D", "E", "F", "G",
                      "G2", "FT"));

// The §5 adaptive adversary binds ports lazily; every no-SoD protocol
// must still elect exactly one leader under it.
struct AdversaryCase {
  std::string protocol;
  std::uint32_t n;
  std::uint32_t radius;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os,
                                  const AdversaryCase& c) {
    os << c.protocol << "_N" << c.n << "_k" << c.radius << "_s" << c.seed;
    return os;
  }
};

class AdversaryProperty : public ::testing::TestWithParam<AdversaryCase> {};

TEST_P(AdversaryProperty, ExactlyOneLeaderUnderAdaptiveBinding) {
  const auto& c = GetParam();
  auto spec = FindProtocol(c.protocol);
  ASSERT_TRUE(spec.has_value());
  ASSERT_FALSE(spec->needs_sense_of_direction);

  RunOptions o;
  o.n = c.n;
  o.seed = c.seed;
  o.mapper = MapperKind::kUpAdversary;
  o.adversary_k = c.radius;
  o.delay = c.seed % 2 ? DelayKind::kRandom : DelayKind::kUnit;
  o.wakeup = c.seed % 3 ? WakeupKind::kAllAtZero
                        : WakeupKind::kRandomSubset;
  o.wakeup_count = 1 + static_cast<std::uint32_t>(c.seed % c.n);

  auto r = RunElection(spec->make(0), o);
  EXPECT_EQ(r.leader_declarations, 1u);
  EXPECT_TRUE(r.leader_id.has_value());
}

std::vector<AdversaryCase> MakeAdversaryCases() {
  std::vector<AdversaryCase> cases;
  std::uint64_t seed = 1000;
  for (const char* proto : {"D", "E", "E-raw", "F", "G", "G2", "FT"}) {
    for (std::uint32_t n : {8u, 16u, 32u}) {
      for (std::uint32_t radius : {2u, 4u, 8u}) {
        cases.push_back({proto, n, radius, ++seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(NoSodProtocols, AdversaryProperty,
                         ::testing::ValuesIn(MakeAdversaryCases()));

}  // namespace
}  // namespace celect::harness
