// Framing-layer tests: encode/decode round trips under arbitrary
// chunking, resync after garbage and corruption, and the hard payload
// bound. All seeded — failures reproduce bit-identically.
#include <gtest/gtest.h>

#include <algorithm>

#include "celect/net/frame.h"
#include "celect/util/rng.h"

namespace celect::net {
namespace {

std::vector<std::uint8_t> RandomPayload(Rng& rng, std::size_t max) {
  std::vector<std::uint8_t> p(rng.NextBelow(max + 1));
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.NextBelow(256));
  return p;
}

FrameKind RandomKind(Rng& rng) {
  return static_cast<FrameKind>(1 + rng.NextBelow(5));
}

TEST(NetFrame, RoundTripSingleFrame) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 0xCE, 0x17, 0xFF};
  std::vector<std::uint8_t> buf;
  EncodeFrame(FrameKind::kData, payload, buf);
  FrameDecoder dec;
  std::vector<Frame> out;
  EXPECT_EQ(dec.PushBytes(buf.data(), buf.size(), out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, FrameKind::kData);
  EXPECT_EQ(out[0].payload, payload);
  EXPECT_EQ(dec.errors(), 0u);
}

TEST(NetFrame, EmptyPayloadRoundTrips) {
  std::vector<std::uint8_t> buf;
  EncodeFrame(FrameKind::kHello, nullptr, 0, buf);
  FrameDecoder dec;
  std::vector<Frame> out;
  EXPECT_EQ(dec.PushBytes(buf.data(), buf.size(), out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].payload.empty());
}

TEST(NetFrame, ArbitraryChunkingIsTransparent) {
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Frame> sent;
    std::vector<std::uint8_t> stream;
    std::size_t count = 1 + rng.NextBelow(5);
    for (std::size_t i = 0; i < count; ++i) {
      Frame f{RandomKind(rng), RandomPayload(rng, 100)};
      EncodeFrame(f.kind, f.payload, stream);
      sent.push_back(std::move(f));
    }
    FrameDecoder dec;
    std::vector<Frame> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      std::size_t chunk = std::min<std::size_t>(1 + rng.NextBelow(13),
                                                stream.size() - pos);
      dec.PushBytes(stream.data() + pos, chunk, got);
      pos += chunk;
    }
    ASSERT_EQ(got.size(), sent.size()) << trial;
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].kind, sent[i].kind) << trial;
      EXPECT_EQ(got[i].payload, sent[i].payload) << trial;
    }
    EXPECT_EQ(dec.errors(), 0u) << trial;
  }
}

TEST(NetFrame, ResyncsAfterLeadingGarbage) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage = RandomPayload(rng, 40);
    // Garbage containing the magic byte could eat the real frame's
    // start (it still must not crash); keep this case exact by
    // scrubbing 0xCE from the prefix.
    for (auto& b : garbage) {
      if (b == kFrameMagic0) b = 0x00;
    }
    std::vector<std::uint8_t> stream = garbage;
    Frame f{RandomKind(rng), RandomPayload(rng, 60)};
    EncodeFrame(f.kind, f.payload, stream);
    FrameDecoder dec;
    std::vector<Frame> got;
    dec.PushBytes(stream.data(), stream.size(), got);
    ASSERT_EQ(got.size(), 1u) << trial;
    EXPECT_EQ(got[0].kind, f.kind) << trial;
    EXPECT_EQ(got[0].payload, f.payload) << trial;
    EXPECT_EQ(dec.garbage_bytes(), garbage.size()) << trial;
  }
}

TEST(NetFrame, CorruptionIsCountedAndFollowingFramesRecovered) {
  // Corrupt the first frame's payload; the decoder must reject it on
  // checksum and pick up the second frame at its magic boundary.
  std::vector<std::uint8_t> first_payload(20, 0xAB);
  std::vector<std::uint8_t> second_payload = {9, 8, 7};
  std::vector<std::uint8_t> stream;
  EncodeFrame(FrameKind::kData, first_payload, stream);
  std::size_t first_len = stream.size();
  EncodeFrame(FrameKind::kAck, second_payload, stream);
  stream[10] ^= 0x40;  // inside the first payload
  FrameDecoder dec;
  std::vector<Frame> got;
  dec.PushBytes(stream.data(), stream.size(), got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].kind, FrameKind::kAck);
  EXPECT_EQ(got[0].payload, second_payload);
  EXPECT_GE(dec.errors(), 1u);
  (void)first_len;
}

TEST(NetFrame, OversizedLengthRejectedBeforeBuffering) {
  // Hand-build a header claiming a payload far over the cap; the
  // decoder must error out at the length field.
  std::vector<std::uint8_t> stream = {kFrameMagic0, kFrameMagic1,
                                      static_cast<std::uint8_t>(
                                          FrameKind::kData),
                                      0xFF, 0xFF, 0x7F};  // ~2M length
  FrameDecoder dec;
  std::vector<Frame> got;
  dec.PushBytes(stream.data(), stream.size(), got);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(dec.errors(), 1u);
}

TEST(NetFrame, InvalidKindRejected) {
  std::vector<std::uint8_t> stream = {kFrameMagic0, kFrameMagic1, 0x77};
  FrameDecoder dec;
  std::vector<Frame> got;
  dec.PushBytes(stream.data(), stream.size(), got);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(dec.errors(), 1u);
}

TEST(NetFrame, TruncatedDatagramFlushCountsError) {
  std::vector<std::uint8_t> buf;
  EncodeFrame(FrameKind::kData, std::vector<std::uint8_t>(30, 1), buf);
  FrameDecoder dec;
  std::vector<Frame> got;
  dec.PushBytes(buf.data(), buf.size() / 2, got);  // half a datagram
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(dec.FlushTruncated());
  EXPECT_EQ(dec.errors(), 1u);
  // And the decoder is clean again: a full frame parses.
  dec.PushBytes(buf.data(), buf.size(), got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_FALSE(dec.FlushTruncated());
}

TEST(NetFrame, RandomGarbageFuzzNeverCrashes) {
  Rng rng(31415);
  FrameDecoder dec;
  std::vector<Frame> got;
  for (int trial = 0; trial < 2000; ++trial) {
    auto junk = RandomPayload(rng, 50);
    dec.PushBytes(junk.data(), junk.size(), got);
  }
  // Every emitted frame, if any, passed a 32-bit checksum over random
  // bytes — astronomically unlikely; mostly this pins "no crash".
  EXPECT_LE(got.size(), 2u);
}

TEST(NetFrame, BitFlipFuzzNeverYieldsWrongPayload) {
  Rng rng(2718);
  for (int trial = 0; trial < 1000; ++trial) {
    Frame f{RandomKind(rng), RandomPayload(rng, 80)};
    std::vector<std::uint8_t> buf;
    EncodeFrame(f.kind, f.payload, buf);
    std::uint64_t bit = rng.NextBelow(buf.size() * 8);
    buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    FrameDecoder dec;
    std::vector<Frame> got;
    dec.PushBytes(buf.data(), buf.size(), got);
    if (got.size() == 1) {
      // Only a flip the checksum cannot see (inside the magic pair it
      // could not be — that kills the frame) may survive; payload must
      // be identical or the frame must have been rejected.
      EXPECT_EQ(got[0].payload, f.payload) << trial;
      EXPECT_EQ(got[0].kind, f.kind) << trial;
    }
  }
}

}  // namespace
}  // namespace celect::net
