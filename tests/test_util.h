// Shared helpers for the celect test suites.
#pragma once

#include <gtest/gtest.h>

#include "celect/harness/experiment.h"
#include "celect/sim/runtime.h"

namespace celect::test {

// Asserts the fundamental election contract: exactly one leader was
// declared and the run quiesced.
inline void ExpectUniqueLeader(const sim::RunResult& r,
                               const std::string& context) {
  EXPECT_EQ(r.leader_declarations, 1u) << context;
  EXPECT_TRUE(r.leader_id.has_value()) << context;
}

// Runs and asserts in one step; returns the result for further checks.
inline sim::RunResult RunAndCheck(const sim::ProcessFactory& factory,
                                  const harness::RunOptions& options) {
  sim::RunResult r = harness::RunElection(factory, options);
  ExpectUniqueLeader(r, harness::Describe(options));
  return r;
}

}  // namespace celect::test
