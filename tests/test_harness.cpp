#include <gtest/gtest.h>

#include <sstream>

#include "celect/harness/experiment.h"
#include "celect/harness/registry.h"
#include "celect/harness/table.h"
#include "test_util.h"

namespace celect::harness {
namespace {

TEST(Registry, ContainsAllPaperProtocols) {
  for (const char* name : {"lmw86", "A", "A'", "B", "C", "D", "E",
                           "E-raw", "F", "G", "G2", "FT"}) {
    EXPECT_TRUE(FindProtocol(name).has_value()) << name;
  }
  EXPECT_FALSE(FindProtocol("does-not-exist").has_value());
}

TEST(Registry, LookupIsCaseInsensitiveWithAliases) {
  EXPECT_TRUE(FindProtocol("c").has_value());
  EXPECT_TRUE(FindProtocol("aprime").has_value());
  EXPECT_TRUE(FindProtocol("eraw").has_value());
}

TEST(Registry, EveryProtocolElectsOnItsNativeNetwork) {
  for (const auto& spec : AllProtocols()) {
    RunOptions o;
    o.n = 16;  // power of two: valid for every protocol
    o.mapper = spec.needs_sense_of_direction
                   ? MapperKind::kSenseOfDirection
                   : MapperKind::kRandom;
    auto r = RunElection(spec.make(0), o);
    EXPECT_EQ(r.leader_declarations, 1u) << spec.name;
  }
}

TEST(Registry, ListingMentionsEveryProtocol) {
  std::string listing = ProtocolListing();
  for (const auto& spec : AllProtocols()) {
    EXPECT_NE(listing.find(spec.name), std::string::npos) << spec.name;
  }
}

TEST(Experiment, DescribeAndSummarizeAreReadable) {
  RunOptions o;
  o.n = 8;
  o.mapper = MapperKind::kSenseOfDirection;
  std::string desc = Describe(o);
  EXPECT_NE(desc.find("N=8"), std::string::npos);
  EXPECT_NE(desc.find("sod"), std::string::npos);

  auto spec = FindProtocol("C");
  auto r = RunElection(spec->make(0), o);
  std::string sum = Summarize(r);
  EXPECT_NE(sum.find("leader="), std::string::npos);
  EXPECT_NE(sum.find("messages="), std::string::npos);
}

TEST(Experiment, SameSeedSameResult) {
  auto spec = FindProtocol("G");
  RunOptions o;
  o.n = 24;
  o.seed = 99;
  o.delay = DelayKind::kRandom;
  o.identity = IdentityKind::kRandomPermutation;
  auto r1 = RunElection(spec->make(0), o);
  auto r2 = RunElection(spec->make(0), o);
  EXPECT_EQ(r1.leader_id, r2.leader_id);
  EXPECT_EQ(r1.total_messages, r2.total_messages);
  EXPECT_EQ(r1.leader_time, r2.leader_time);
}

TEST(Experiment, DifferentSeedsUsuallyDiffer) {
  auto spec = FindProtocol("G");
  RunOptions a, b;
  a.n = b.n = 24;
  a.delay = b.delay = DelayKind::kRandom;
  a.seed = 1;
  b.seed = 2;
  auto r1 = RunElection(spec->make(0), a);
  auto r2 = RunElection(spec->make(0), b);
  EXPECT_TRUE(r1.total_messages != r2.total_messages ||
              r1.leader_time != r2.leader_time);
}

TEST(ExperimentDeathTest, SubsetWakeupCountAboveNChecks) {
  RunOptions o;
  o.n = 8;
  o.wakeup = WakeupKind::kRandomSubset;
  o.wakeup_count = 9;
  EXPECT_DEATH(BuildNetwork(o), "exceeds");
}

TEST(Experiment, SubsetWakeupClampsToLivePopulation) {
  // 8 nodes, 5 failed: only 3 live nodes exist, so a request for 6 base
  // nodes must wake exactly the 3 live ones instead of under-filling or
  // spinning. Used to silently wake fewer nodes than requested.
  RunOptions o;
  o.n = 8;
  o.failures = 5;
  o.wakeup = WakeupKind::kRandomSubset;
  o.wakeup_count = 6;
  EXPECT_EQ(RequestedWakeupCount(o), 6u);
  EXPECT_EQ(EffectiveWakeupCount(o), 3u);
  auto config = BuildNetwork(o);
  EXPECT_EQ(config.wakeup.wakeups.size(), 3u);
  for (const auto& [node, at] : config.wakeup.wakeups) {
    EXPECT_FALSE(config.failed[node]) << "woke a failed node " << node;
  }
  std::string desc = Describe(o);
  EXPECT_NE(desc.find("subset(3, clamped from 6)"), std::string::npos)
      << desc;
}

TEST(Experiment, SubsetWakeupDefaultsToHalf) {
  RunOptions o;
  o.n = 8;
  o.wakeup = WakeupKind::kRandomSubset;  // wakeup_count 0 -> N/2
  EXPECT_EQ(EffectiveWakeupCount(o), 4u);
  auto config = BuildNetwork(o);
  EXPECT_EQ(config.wakeup.wakeups.size(), 4u);
  EXPECT_NE(Describe(o).find("subset(4)"), std::string::npos);
}

TEST(Experiment, FailuresNeverIncludeNodeZero) {
  RunOptions o;
  o.n = 16;
  o.failures = 8;
  o.wakeup = WakeupKind::kSingle;  // node 0 must be alive to wake
  auto config = BuildNetwork(o);
  EXPECT_FALSE(config.failed[0]);
  std::uint32_t count = 0;
  for (bool f : config.failed) count += f;
  EXPECT_EQ(count, 8u);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"N", "messages", "time"});
  t.AddRow({"64", "1234", "5.00"});
  t.AddRow({"128", "2468", "6.10"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("messages"), std::string::npos);
  EXPECT_NE(s.find("2468"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, NumAndIntHelpers) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Int(42), "42");
}

TEST(Table, BannerIncludesClaim) {
  std::ostringstream os;
  PrintBanner(os, "E6", "C: O(N) messages and O(log N) time");
  EXPECT_NE(os.str().find("E6"), std::string::npos);
  EXPECT_NE(os.str().find("log N"), std::string::npos);
}

}  // namespace
}  // namespace celect::harness
