// Unit tests for the simulator primitives: Time, EventQueue, LinkTable,
// DelayModels, WakeupPlans, and identity/network validation.
#include <gtest/gtest.h>

#include <set>

#include "celect/sim/delay_model.h"
#include "celect/sim/event_queue.h"
#include "celect/sim/link.h"
#include "celect/sim/network.h"
#include "celect/sim/time.h"
#include "celect/sim/wakeup_policy.h"

namespace celect::sim {
namespace {

TEST(Time, UnitArithmetic) {
  EXPECT_EQ(Time::FromUnits(3) + Time::FromUnits(4), Time::FromUnits(7));
  EXPECT_EQ(Time::FromUnits(3) * 2, Time::FromUnits(6));
  EXPECT_LT(Time::FromUnits(1), Time::FromUnits(2));
  EXPECT_EQ(kUnit.ToDouble(), 1.0);
}

TEST(Time, FromDoubleKeepsPositiveDurationsPositive) {
  EXPECT_GT(Time::FromDouble(1e-12), Time::Zero());
  EXPECT_EQ(Time::FromDouble(0.0), Time::Zero());
  EXPECT_DOUBLE_EQ(Time::FromDouble(0.5).ToDouble(), 0.5);
}

TEST(Time, FractionsAreExactInTicks) {
  Time half = Time::FromTicks(Time::kTicksPerUnit / 2);
  EXPECT_EQ(half + half, kUnit);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.Push(Time::FromUnits(5), WakeupEvent{5});
  q.Push(Time::FromUnits(1), WakeupEvent{1});
  q.Push(Time::FromUnits(3), WakeupEvent{3});
  EXPECT_EQ(std::get<WakeupEvent>(q.Pop()->body).node, 1u);
  EXPECT_EQ(std::get<WakeupEvent>(q.Pop()->body).node, 3u);
  EXPECT_EQ(std::get<WakeupEvent>(q.Pop()->body).node, 5u);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (NodeId i = 0; i < 10; ++i) q.Push(Time::FromUnits(1), WakeupEvent{i});
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_EQ(std::get<WakeupEvent>(q.Pop()->body).node, i);
  }
}

TEST(EventQueue, PeekTimeMatchesNextPop) {
  EventQueue q;
  q.Push(Time::FromUnits(2), WakeupEvent{0});
  q.Push(Time::FromUnits(1), WakeupEvent{1});
  EXPECT_EQ(q.PeekTime(), Time::FromUnits(1));
}

TEST(EventQueueDeathTest, PeekTimeOnEmptyQueueChecks) {
  EventQueue q;
  EXPECT_DEATH(q.PeekTime(), "");
  // The precondition holds again once the queue refills and drains.
  q.Push(Time::FromUnits(1), WakeupEvent{0});
  q.Pop();
  EXPECT_DEATH(q.PeekTime(), "");
}

TEST(LinkTable, SimpleTransit) {
  LinkTable links(4);
  Time a = links.Admit(0, 1, Time::Zero(), {kUnit, kUnit});
  EXPECT_EQ(a, Time::FromUnits(1));
  EXPECT_EQ(links.SentCount(0, 1), 1u);
  EXPECT_EQ(links.SentCount(1, 0), 0u);  // directions are independent
}

TEST(LinkTable, FifoNeverReorders) {
  LinkTable links(4);
  Time a1 = links.Admit(0, 1, Time::Zero(), {kUnit, Time::Zero()});
  // Second message sent later but with a tiny transit: must not overtake.
  Time a2 = links.Admit(0, 1, Time::FromDouble(0.1),
                        {Time::FromDouble(0.05), Time::Zero()});
  EXPECT_GE(a2, a1);
}

TEST(LinkTable, SpacingSerialisesABurst) {
  LinkTable links(4);
  // Ten messages at time 0 with transit 1, spacing 1: the i-th arrives
  // at time i+1 — the congestion behaviour behind the paper's Θ(N)
  // forwarding pathology.
  Time last = Time::Zero();
  for (int i = 0; i < 10; ++i) {
    last = links.Admit(0, 1, Time::Zero(), {kUnit, kUnit});
    EXPECT_EQ(last, Time::FromUnits(i + 1));
  }
  EXPECT_EQ(links.MaxLinkLoad(), 10u);
}

TEST(LinkTable, ReverseDirectionUnaffectedByForwardLoad) {
  LinkTable links(4);
  for (int i = 0; i < 5; ++i) {
    links.Admit(0, 1, Time::Zero(), {kUnit, kUnit});
  }
  Time back = links.Admit(1, 0, Time::Zero(), {kUnit, kUnit});
  EXPECT_EQ(back, Time::FromUnits(1));
}

TEST(LinkTable, InjectedLossCountsAsSentButNeverArrives) {
  LinkTable links(4);
  links.EnableFaults({/*loss=*/1.0, 0.0, 0.0}, /*seed=*/7);
  for (int i = 0; i < 20; ++i) {
    Admission a = links.AdmitWithFaults(0, 1, Time::Zero(), {kUnit, kUnit});
    EXPECT_TRUE(a.lost);
    EXPECT_FALSE(a.duplicate_arrival.has_value());
  }
  // Lost messages were sent (and paid for) but are never in flight, and
  // they leave the FIFO backlog untouched.
  EXPECT_EQ(links.SentCount(0, 1), 20u);
  EXPECT_EQ(links.MaxLinkLoad(), 20u);
  EXPECT_EQ(links.MaxLinkInflight(), 0u);
  EXPECT_EQ(links.LastArrival(0, 1), Time::Zero());
}

TEST(LinkTable, DuplicationPreservesFifoAndInflightAccounting) {
  LinkTable links(4);
  links.EnableFaults({0.0, /*duplicate=*/1.0, 0.0}, /*seed=*/7);
  Time prev = Time::Zero();
  for (int i = 0; i < 10; ++i) {
    Admission a = links.AdmitWithFaults(0, 1, Time::Zero(), {kUnit, kUnit});
    ASSERT_FALSE(a.lost);
    ASSERT_TRUE(a.duplicate_arrival.has_value());
    // The duplicate is one more FIFO-ordered message: it never overtakes
    // the original, and successive admissions never go backwards.
    EXPECT_GE(a.arrival, prev);
    EXPECT_GE(*a.duplicate_arrival, a.arrival);
    prev = *a.duplicate_arrival;
  }
  // Both copies of every message count against load and in-flight.
  EXPECT_EQ(links.SentCount(0, 1), 20u);
  EXPECT_EQ(links.MaxLinkInflight(), 20u);
  // Delivering every copy drains the link exactly.
  for (int i = 0; i < 20; ++i) links.NotifyDelivered(0, 1);
}

TEST(LinkTable, FifoHoldsForDeliveredMessagesUnderMixedFaults) {
  // Loss and duplication together: whatever actually arrives must still
  // arrive in admission order (no reordering was enabled).
  LinkTable links(4);
  links.EnableFaults({/*loss=*/0.3, /*duplicate=*/0.3, 0.0}, /*seed=*/99);
  Rng delays(4242);
  Time prev = Time::Zero();
  std::uint64_t inflight = 0, delivered = 0, lost = 0;
  for (int i = 0; i < 500; ++i) {
    Time send = Time::FromTicks(i * 100);
    Time transit = Time::FromTicks(
        1 + static_cast<std::int64_t>(delays.NextBelow(Time::kTicksPerUnit)));
    Admission a = links.AdmitWithFaults(0, 1, send, {transit, Time::Zero()});
    if (a.lost) {
      ++lost;
      continue;
    }
    EXPECT_GE(a.arrival, prev);
    prev = a.arrival;
    ++inflight;
    if (a.duplicate_arrival) {
      EXPECT_GE(*a.duplicate_arrival, prev);
      prev = *a.duplicate_arrival;
      ++inflight;
    }
  }
  EXPECT_GT(lost, 0u);
  EXPECT_GT(inflight, 0u);
  EXPECT_LE(links.MaxLinkInflight(), inflight);
  // Every non-lost copy can be delivered; the CHECK inside
  // NotifyDelivered would fire if loss had corrupted the accounting.
  for (; delivered < inflight; ++delivered) links.NotifyDelivered(0, 1);
}

TEST(LinkTable, ReorderedMessageOvertakesBacklogWithinDelayBound) {
  {
    // An empty link has nothing to overtake: even at rate 1.0 the first
    // message is delivered in order.
    LinkTable empty(4);
    empty.EnableFaults({0.0, 0.0, /*reorder=*/1.0}, /*seed=*/3);
    EXPECT_FALSE(
        empty.AdmitWithFaults(0, 1, Time::Zero(), {kUnit, kUnit}).reordered);
  }
  LinkTable links(4);
  // Build a backlog fault-free: five unit-spaced messages, last at t=5.
  for (int i = 0; i < 5; ++i) {
    links.Admit(0, 1, Time::Zero(), {kUnit, kUnit});
  }
  EXPECT_EQ(links.LastArrival(0, 1), Time::FromUnits(5));
  links.EnableFaults({0.0, 0.0, /*reorder=*/1.0}, /*seed=*/3);
  // The next message overtakes the backlog but still respects the
  // one-unit transit bound, and the FIFO baseline never moves backwards.
  Admission a = links.AdmitWithFaults(0, 1, Time::FromUnits(1),
                                      {Time::FromDouble(0.25), kUnit});
  EXPECT_TRUE(a.reordered);
  EXPECT_EQ(a.arrival, Time::FromUnits(1) + Time::FromDouble(0.25));
  EXPECT_EQ(links.LastArrival(0, 1), Time::FromUnits(5));
}

TEST(LinkTable, ZeroRatesAreBitIdenticalToBaseline) {
  LinkTable plain(4), faulty(4);
  faulty.EnableFaults({0.0, 0.0, 0.0}, /*seed=*/1);  // Any() == false
  Rng delays(77);
  for (int i = 0; i < 200; ++i) {
    Time send = Time::FromTicks(i * 333);
    Time transit = Time::FromTicks(
        1 + static_cast<std::int64_t>(delays.NextBelow(Time::kTicksPerUnit)));
    DelayDecision d{transit, Time::Zero()};
    Admission a = faulty.AdmitWithFaults(0, 1, send, d);
    EXPECT_EQ(a.arrival, plain.Admit(0, 1, send, d));
    EXPECT_FALSE(a.lost);
    EXPECT_FALSE(a.reordered);
  }
}

TEST(DelayModel, UnitIsWorstCasePipe) {
  UnitDelayModel m;
  auto d = m.Decide({0, 1, Time::Zero(), 0, nullptr});
  EXPECT_EQ(d.transit, kUnit);
  EXPECT_EQ(d.spacing, kUnit);
}

TEST(DelayModel, EagerIsMinimal) {
  EagerDelayModel m;
  auto d = m.Decide({0, 1, Time::Zero(), 0, nullptr});
  EXPECT_EQ(d.transit, Time::Tick());
  EXPECT_EQ(d.spacing, Time::Zero());
}

TEST(DelayModel, RandomStaysWithinModelBounds) {
  RandomDelayModel m(1234);
  for (int i = 0; i < 2000; ++i) {
    auto d = m.Decide({0, 1, Time::Zero(), 0, nullptr});
    EXPECT_GT(d.transit, Time::Zero());
    EXPECT_LE(d.transit, kUnit);
    EXPECT_GE(d.spacing, Time::Zero());
    EXPECT_LE(d.spacing, kUnit);
  }
}

TEST(DelayModel, FunctionModelIsScriptable) {
  FunctionDelayModel m([](const MessageInfo& info) {
    return DelayDecision{info.from == 0 ? kUnit : Time::Tick(),
                         Time::Zero()};
  });
  EXPECT_EQ(m.Decide({0, 1, Time::Zero(), 0, nullptr}).transit, kUnit);
  EXPECT_EQ(m.Decide({2, 1, Time::Zero(), 0, nullptr}).transit,
            Time::Tick());
}

TEST(WakeupPlan, AllAtZeroCoversEveryNode) {
  auto plan = WakeAllAtZero(8);
  EXPECT_EQ(plan.base_count(), 8u);
  EXPECT_EQ(plan.LastWakeup(), Time::Zero());
}

TEST(WakeupPlan, StaggeredChainSpacing) {
  auto plan = WakeStaggeredChain(4, Time::FromDouble(0.9));
  ASSERT_EQ(plan.wakeups.size(), 4u);
  EXPECT_EQ(plan.wakeups[0].second, Time::Zero());
  EXPECT_NEAR(plan.wakeups[3].second.ToDouble(), 2.7, 1e-5);
}

TEST(WakeupPlan, RandomSubsetRespectsCountAndWindow) {
  Rng rng(5);
  auto plan = WakeRandomSubset(100, 10, Time::FromUnits(3), rng);
  EXPECT_EQ(plan.base_count(), 10u);
  for (const auto& [node, at] : plan.wakeups) {
    EXPECT_LT(node, 100u);
    EXPECT_LE(at, Time::FromUnits(3));
  }
}

TEST(Identities, AscendingAndRandomAreUniquePermutations) {
  auto asc = IdentitiesAscending(50);
  EXPECT_EQ(asc.front(), 1);
  EXPECT_EQ(asc.back(), 50);
  Rng rng(7);
  auto rnd = IdentitiesRandom(50, rng);
  std::set<Id> s(rnd.begin(), rnd.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 1);
  EXPECT_EQ(*s.rbegin(), 50);
}

TEST(Identities, SparseAreStrictlyUnique) {
  Rng rng(11);
  auto ids = IdentitiesSparse(200, rng);
  std::set<Id> s(ids.begin(), ids.end());
  EXPECT_EQ(s.size(), 200u);
}

}  // namespace
}  // namespace celect::sim
