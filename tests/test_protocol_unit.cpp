// State-machine unit tests: drive single protocol nodes with scripted
// packets and assert the exact replies the paper's rules prescribe.
#include <gtest/gtest.h>

#include "celect/proto/nosod/efg_engine.h"
#include "celect/proto/nosod/protocol_d.h"
#include "celect/proto/nosod/protocol_e.h"
#include "celect/proto/sod/protocol_a.h"
#include "celect/proto/sod/protocol_b.h"
#include "celect/proto/sod/protocol_c.h"
#include "mock_context.h"

namespace celect::proto {
namespace {

using sim::Id;
using sim::Port;
using test::MockContext;
using wire::Packet;

// ---------------- Protocol A ------------------------------------------

std::unique_ptr<sim::Process> MakeANode(sim::Id id, std::uint32_t n,
                                        std::uint32_t k) {
  sod::ProtocolAParams params;
  params.k = k;
  return sod::MakeProtocolA(params)(sim::ProcessInit{0, id, n});
}

TEST(ProtocolAUnit, WakeupSendsCaptureToDistanceOne) {
  MockContext ctx(0, 5, 16);
  auto node = MakeANode(5, 16, 4);
  node->OnWakeup(ctx);
  const auto& s = ctx.single();
  EXPECT_EQ(s.port, 1u);  // i[1]
  EXPECT_EQ(s.packet.type, sod::kACapture);
  EXPECT_EQ(s.packet.field(0), 5);  // id
  EXPECT_EQ(s.packet.field(1), 0);  // level
}

TEST(ProtocolAUnit, PassiveNodeAcceptsWithLevelZero) {
  MockContext ctx(3, 7, 16);
  auto node = MakeANode(7, 16, 4);
  // Never woke: first contact is the capture itself.
  node->OnMessage(ctx, 9, Packet{sod::kACapture, {2, 0}});
  const auto& s = ctx.single();
  EXPECT_EQ(s.port, 9u);  // reply on the arrival port
  EXPECT_EQ(s.packet.type, sod::kAAccept);
  EXPECT_EQ(s.packet.field(0), 0);
}

TEST(ProtocolAUnit, BaseNodeContestsOnLevelThenId) {
  // Base node id 10, level 0: rejects (0, 3), accepts (0, 12) and
  // (1, 3).
  {
    MockContext ctx(0, 10, 16);
    auto node = MakeANode(10, 16, 4);
    node->OnWakeup(ctx);
    ctx.ClearSent();
    node->OnMessage(ctx, 5, Packet{sod::kACapture, {3, 0}});
    EXPECT_EQ(ctx.single().packet.type, sod::kAReject);
  }
  {
    MockContext ctx(0, 10, 16);
    auto node = MakeANode(10, 16, 4);
    node->OnWakeup(ctx);
    ctx.ClearSent();
    node->OnMessage(ctx, 5, Packet{sod::kACapture, {12, 0}});
    EXPECT_EQ(ctx.single().packet.type, sod::kAAccept);
  }
  {
    MockContext ctx(0, 10, 16);
    auto node = MakeANode(10, 16, 4);
    node->OnWakeup(ctx);
    ctx.ClearSent();
    node->OnMessage(ctx, 5, Packet{sod::kACapture, {3, 1}});
    EXPECT_EQ(ctx.single().packet.type, sod::kAAccept);
    EXPECT_EQ(ctx.single().packet.field(0), 0);  // surrenders own level 0
  }
}

TEST(ProtocolAUnit, BulkAcceptSkipsSurrenderedSegment) {
  MockContext ctx(0, 9, 16);
  auto node = MakeANode(9, 16, 4);
  node->OnWakeup(ctx);  // capture -> i[1]
  ctx.ClearSent();
  // i[1] had captured two nodes of its own: the accept carries level 2,
  // our level jumps to 0+2+1 = 3, and the walk continues at i[4] —
  // skipping the surrendered i[2], i[3].
  node->OnMessage(ctx, 15, Packet{sod::kAAccept, {2}});
  ASSERT_EQ(ctx.sent_count(), 1u);
  EXPECT_EQ(ctx.single().port, 4u);
  EXPECT_EQ(ctx.single().packet.field(1), 3);  // carried level
  ctx.ClearSent();
  // One more accept reaches level 4 = k: the owner round starts.
  node->OnMessage(ctx, 12, Packet{sod::kAAccept, {0}});
  auto owners = ctx.OfType(sod::kAOwner);
  ASSERT_EQ(owners.size(), 4u);  // owner(i) to i[1..4]
  EXPECT_EQ(owners[0].port, 1u);
  EXPECT_EQ(owners[3].port, 4u);
}

TEST(ProtocolAUnit, OwnerRoundThenElectThenLeader) {
  const std::uint32_t n = 16, k = 4;
  MockContext ctx(0, 9, n);
  auto node = MakeANode(9, n, k);
  node->OnWakeup(ctx);
  ctx.ClearSent();
  // Accept with level 3: 0 + 3 + 1 = 4 = k -> owner round.
  node->OnMessage(ctx, 15, Packet{sod::kAAccept, {3}});
  EXPECT_EQ(ctx.OfType(sod::kAOwner).size(), 4u);
  ctx.ClearSent();
  for (int i = 0; i < 4; ++i) {
    node->OnMessage(ctx, 15, Packet{sod::kAOwnerAck, {}});
  }
  // Elect to {i[8], i[12]} (2k..N-k step k).
  auto elects = ctx.OfType(sod::kAElect);
  ASSERT_EQ(elects.size(), 2u);
  EXPECT_EQ(elects[0].port, 8u);
  EXPECT_EQ(elects[1].port, 12u);
  EXPECT_EQ(elects[0].packet.field(0), 9);  // id
  EXPECT_EQ(elects[0].packet.field(1), 4);  // level
  ctx.ClearSent();
  node->OnMessage(ctx, 8, Packet{sod::kAElectAccept, {}});
  EXPECT_EQ(ctx.leader_declarations(), 0u);
  node->OnMessage(ctx, 4, Packet{sod::kAElectAccept, {}});
  EXPECT_EQ(ctx.leader_declarations(), 1u);
}

TEST(ProtocolAUnit, ElectAtOwnedNodeForwardsToOwner) {
  MockContext ctx(3, 7, 16);
  auto node = MakeANode(7, 16, 4);
  // Captured by id 2 over port 9.
  node->OnMessage(ctx, 9, Packet{sod::kACapture, {2, 0}});
  ctx.ClearSent();
  // Elect from candidate 11 arrives on port 4: forwarded to the owner.
  node->OnMessage(ctx, 4, Packet{sod::kAElect, {11, 4}});
  const auto& fwd = ctx.single();
  EXPECT_EQ(fwd.port, 9u);  // owner link
  EXPECT_EQ(fwd.packet.type, sod::kAFwdElect);
  EXPECT_EQ(fwd.packet.field(0), 11);
  ctx.ClearSent();
  // Owner killed: the node accepts the candidate and re-points.
  node->OnMessage(ctx, 9, Packet{sod::kAFwdAccept, {}});
  const auto& acc = ctx.single();
  EXPECT_EQ(acc.port, 4u);
  EXPECT_EQ(acc.packet.type, sod::kAElectAccept);
}

TEST(ProtocolAUnit, ForwardQueueSerialisesContests) {
  MockContext ctx(3, 7, 16);
  auto node = MakeANode(7, 16, 4);
  node->OnMessage(ctx, 9, Packet{sod::kACapture, {2, 0}});
  ctx.ClearSent();
  node->OnMessage(ctx, 4, Packet{sod::kAElect, {11, 4}});
  node->OnMessage(ctx, 5, Packet{sod::kAElect, {12, 4}});
  // Only one forward may be outstanding.
  EXPECT_EQ(ctx.OfType(sod::kAFwdElect).size(), 1u);
  ctx.ClearSent();
  node->OnMessage(ctx, 9, Packet{sod::kAFwdReject, {}});
  // First contender rejected; second forwarded.
  ASSERT_EQ(ctx.sent_count(), 2u);
  EXPECT_EQ(ctx.sent()[0].packet.type, sod::kAElectReject);
  EXPECT_EQ(ctx.sent()[0].port, 4u);
  EXPECT_EQ(ctx.sent()[1].packet.type, sod::kAFwdElect);
  EXPECT_EQ(ctx.sent()[1].packet.field(0), 12);
}

TEST(ProtocolAUnit, DeclaredLeaderRejectsForwardedContests) {
  const std::uint32_t n = 8, k = 4;  // k = N/2: elect set empty
  MockContext ctx(0, 9, n);
  auto node = MakeANode(9, n, k);
  node->OnWakeup(ctx);
  node->OnMessage(ctx, 7, Packet{sod::kAAccept, {3}});
  for (int i = 0; i < 4; ++i) {
    node->OnMessage(ctx, 7, Packet{sod::kAOwnerAck, {}});
  }
  EXPECT_EQ(ctx.leader_declarations(), 1u);
  ctx.ClearSent();
  node->OnMessage(ctx, 3, Packet{sod::kAFwdElect, {99, 99}});
  EXPECT_EQ(ctx.single().packet.type, sod::kAFwdReject);
}

// ---------------- Protocol B ------------------------------------------

TEST(ProtocolBUnit, DoublingTargetsPerStep) {
  const std::uint32_t n = 16;
  MockContext ctx(0, 3, n);
  auto node = sod::MakeProtocolB()(sim::ProcessInit{0, 3, n});
  node->OnWakeup(ctx);
  EXPECT_EQ(ctx.single().port, 8u);  // step 1: i[N/2]
  EXPECT_EQ(ctx.single().packet.field(1), 1);
  ctx.ClearSent();
  node->OnMessage(ctx, 8, Packet{sod::kBAccept, {}});
  // Step 2: i[4], i[12].
  auto caps = ctx.OfType(sod::kBCapture);
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0].port, 4u);
  EXPECT_EQ(caps[1].port, 12u);
  ctx.ClearSent();
  node->OnMessage(ctx, 4, Packet{sod::kBAccept, {}});
  node->OnMessage(ctx, 12, Packet{sod::kBAccept, {}});
  // Step 3: odd multiples of 2: i[2], i[6], i[10], i[14].
  caps = ctx.OfType(sod::kBCapture);
  ASSERT_EQ(caps.size(), 4u);
  EXPECT_EQ(caps[0].port, 2u);
  EXPECT_EQ(caps[3].port, 14u);
}

TEST(ProtocolBUnit, ContestComparesStepThenId) {
  const std::uint32_t n = 16;
  MockContext ctx(0, 10, n);
  auto node = sod::MakeProtocolB()(sim::ProcessInit{0, 10, n});
  node->OnWakeup(ctx);  // now a step-1 candidate
  ctx.ClearSent();
  node->OnMessage(ctx, 8, Packet{sod::kBCapture, {4, 1}});
  EXPECT_EQ(ctx.single().packet.type, sod::kBReject);  // (1,4) < (1,10)
  ctx.ClearSent();
  node->OnMessage(ctx, 8, Packet{sod::kBCapture, {4, 2}});
  EXPECT_EQ(ctx.single().packet.type, sod::kBAccept);  // higher step wins
  ctx.ClearSent();
  // Once captured, everything is accepted.
  node->OnMessage(ctx, 8, Packet{sod::kBCapture, {2, 1}});
  EXPECT_EQ(ctx.single().packet.type, sod::kBAccept);
}

TEST(ProtocolBUnit, RejectKillsCandidate) {
  const std::uint32_t n = 16;
  MockContext ctx(0, 10, n);
  auto node = sod::MakeProtocolB()(sim::ProcessInit{0, 10, n});
  node->OnWakeup(ctx);
  ctx.ClearSent();
  node->OnMessage(ctx, 8, Packet{sod::kBReject, {}});
  // Dead: a later accept must not advance it.
  node->OnMessage(ctx, 8, Packet{sod::kBAccept, {}});
  EXPECT_EQ(ctx.sent_count(), 0u);
  EXPECT_EQ(ctx.leader_declarations(), 0u);
}

// ---------------- Protocol C ------------------------------------------

TEST(ProtocolCUnit, ClassWalkTargetsStrideMultiples) {
  const std::uint32_t n = 16;  // k = 4, class size 4
  MockContext ctx(0, 3, n);
  auto node = sod::MakeProtocolC()(sim::ProcessInit{0, 3, n});
  node->OnWakeup(ctx);
  EXPECT_EQ(ctx.single().port, 4u);  // i[k]
  EXPECT_EQ(ctx.single().packet.type, sod::kCCapture);
  ctx.ClearSent();
  node->OnMessage(ctx, 12, Packet{sod::kCCaptAccept, {0}});
  EXPECT_EQ(ctx.single().port, 8u);  // i[2k]
  ctx.ClearSent();
  node->OnMessage(ctx, 12, Packet{sod::kCCaptAccept, {0}});
  EXPECT_EQ(ctx.single().port, 12u);  // i[3k] — last class mate
  ctx.ClearSent();
  node->OnMessage(ctx, 12, Packet{sod::kCCaptAccept, {0}});
  // Class complete: owner round over the class.
  auto owners = ctx.OfType(sod::kCOwner);
  ASSERT_EQ(owners.size(), 3u);
  EXPECT_EQ(owners[0].port, 4u);
  EXPECT_EQ(owners[2].port, 12u);
}

TEST(ProtocolCUnit, DoublingWithinStrideAfterOwnerRound) {
  const std::uint32_t n = 16;
  MockContext ctx(0, 3, n);
  auto node = sod::MakeProtocolC()(sim::ProcessInit{0, 3, n});
  node->OnWakeup(ctx);
  for (int i = 0; i < 3; ++i) {
    node->OnMessage(ctx, 12, Packet{sod::kCCaptAccept, {0}});
  }
  ctx.ClearSent();
  for (int i = 0; i < 3; ++i) {
    node->OnMessage(ctx, 12, Packet{sod::kCOwnerAck, {}});
  }
  // Doubling step 1 inside i[1..k-1]: elect to i[k/2] = i[2].
  const auto& elect = ctx.single();
  EXPECT_EQ(elect.port, 2u);
  EXPECT_EQ(elect.packet.type, sod::kCElect);
  EXPECT_EQ(elect.packet.field(1), 1);  // step
  ctx.ClearSent();
  node->OnMessage(ctx, 2, Packet{sod::kCElectAccept, {}});
  // Step 2: i[1], i[3].
  auto elects = ctx.OfType(sod::kCElect);
  ASSERT_EQ(elects.size(), 2u);
  EXPECT_EQ(elects[0].port, 1u);
  EXPECT_EQ(elects[1].port, 3u);
  ctx.ClearSent();
  node->OnMessage(ctx, 1, Packet{sod::kCElectAccept, {}});
  node->OnMessage(ctx, 3, Packet{sod::kCElectAccept, {}});
  EXPECT_EQ(ctx.leader_declarations(), 1u);
}

TEST(ProtocolCUnit, ClassWalkCandidateLosesToDoublingElect) {
  // A candidate still in its class walk (step 0) dies to any doubling
  // elect (step >= 1).
  const std::uint32_t n = 16;
  MockContext ctx(0, 15, n);
  auto node = sod::MakeProtocolC()(sim::ProcessInit{0, 15, n});
  node->OnWakeup(ctx);
  ctx.ClearSent();
  node->OnMessage(ctx, 2, Packet{sod::kCElect, {3, 1}});
  EXPECT_EQ(ctx.single().packet.type, sod::kCElectAccept);
  // Dead now: its own class-walk accept is ignored.
  ctx.ClearSent();
  node->OnMessage(ctx, 12, Packet{sod::kCCaptAccept, {0}});
  EXPECT_EQ(ctx.sent_count(), 0u);
}

// ---------------- Protocol D ------------------------------------------

TEST(ProtocolDUnit, FloodsOnWakeupAndCountsAccepts) {
  const std::uint32_t n = 4;
  MockContext ctx(0, 4, n);
  auto node = nosod::MakeProtocolD()(sim::ProcessInit{0, 4, n});
  node->OnWakeup(ctx);
  EXPECT_EQ(ctx.OfType(nosod::kDElect).size(), 3u);
  ctx.ClearSent();
  node->OnMessage(ctx, 1, Packet{nosod::kDAccept, {}});
  node->OnMessage(ctx, 2, Packet{nosod::kDAccept, {}});
  EXPECT_EQ(ctx.leader_declarations(), 0u);
  node->OnMessage(ctx, 3, Packet{nosod::kDAccept, {}});
  EXPECT_EQ(ctx.leader_declarations(), 1u);
}

TEST(ProtocolDUnit, BaseNodeStaysSilentForSmallerId) {
  const std::uint32_t n = 4;
  MockContext ctx(0, 4, n);
  auto node = nosod::MakeProtocolD()(sim::ProcessInit{0, 4, n});
  node->OnWakeup(ctx);
  ctx.ClearSent();
  node->OnMessage(ctx, 1, Packet{nosod::kDElect, {2}});
  EXPECT_EQ(ctx.sent_count(), 0u);  // silence is the contest
  node->OnMessage(ctx, 1, Packet{nosod::kDElect, {9}});
  EXPECT_EQ(ctx.single().packet.type, nosod::kDAccept);
}

TEST(ProtocolDUnit, PassiveNodeAcceptsEveryElect) {
  const std::uint32_t n = 4;
  MockContext ctx(1, 1, n);
  auto node = nosod::MakeProtocolD()(sim::ProcessInit{1, 1, n});
  node->OnMessage(ctx, 2, Packet{nosod::kDElect, {3}});
  node->OnMessage(ctx, 3, Packet{nosod::kDElect, {2}});
  EXPECT_EQ(ctx.OfType(nosod::kDAccept).size(), 2u);
}

// ---------------- EFG engine ------------------------------------------

std::unique_ptr<sim::Process> MakeENode(sim::Id id, std::uint32_t n,
                                        bool throttle = true) {
  return nosod::MakeProtocolE(throttle)(sim::ProcessInit{0, id, n});
}

TEST(EfgUnit, WalkIsSequentialOverFreshPorts) {
  MockContext ctx(0, 5, 8);
  ctx.set_sense_of_direction(false);
  auto node = MakeENode(5, 8);
  node->OnWakeup(ctx);
  EXPECT_EQ(ctx.single().packet.type, nosod::kFCapture);
  EXPECT_EQ(ctx.single().port, 1u);
  ctx.ClearSent();
  node->OnMessage(ctx, 1, Packet{nosod::kFAccept, {}});
  EXPECT_EQ(ctx.single().port, 2u);  // one at a time
  EXPECT_EQ(ctx.single().packet.field(1), 1);  // level grew
}

TEST(EfgUnit, PassiveAcceptsBaseContests) {
  MockContext ctx(2, 100, 8);
  auto node = MakeENode(100, 8);
  // Passive node with a big id still accepts a level-0 capture.
  node->OnMessage(ctx, 3, Packet{nosod::kFCapture, {1, 0}});
  EXPECT_EQ(ctx.single().packet.type, nosod::kFAccept);
}

TEST(EfgUnit, BaseContestRejectsWithCredential) {
  MockContext ctx(0, 10, 8);
  auto node = MakeENode(10, 8);
  node->OnWakeup(ctx);
  node->OnMessage(ctx, 1, Packet{nosod::kFAccept, {}});  // level 1
  ctx.ClearSent();
  node->OnMessage(ctx, 5, Packet{nosod::kFCapture, {99, 0}});
  const auto& rej = ctx.single();
  EXPECT_EQ(rej.packet.type, nosod::kFReject);
  EXPECT_EQ(rej.packet.field(0), 10);  // rejecter id
  EXPECT_EQ(rej.packet.field(1), 1);   // rejecter level
}

TEST(EfgUnit, ThrottledForwardBuffersAndServesLargest) {
  MockContext ctx(4, 2, 8);
  auto node = MakeENode(2, 8);
  node->OnMessage(ctx, 7, Packet{nosod::kFCapture, {50, 1}});  // captured
  ctx.ClearSent();
  // Three contenders while captured; only one forward at a time, and
  // the strongest is forwarded first among those buffered.
  node->OnMessage(ctx, 1, Packet{nosod::kFCapture, {10, 1}});
  node->OnMessage(ctx, 2, Packet{nosod::kFCapture, {60, 2}});
  node->OnMessage(ctx, 3, Packet{nosod::kFCapture, {55, 2}});
  auto fwds = ctx.OfType(nosod::kFFwd);
  ASSERT_EQ(fwds.size(), 1u);
  EXPECT_EQ(fwds[0].port, 7u);          // to the owner
  EXPECT_EQ(fwds[0].packet.field(0), 10);  // first arrival went out first
  ctx.ClearSent();
  // Owner survives contender 10; next forward must be the strongest
  // remaining, (2, 60).
  node->OnMessage(ctx, 7, Packet{nosod::kFFwdReject, {50, 9}});
  ASSERT_EQ(ctx.sent_count(), 2u);
  EXPECT_EQ(ctx.sent()[0].packet.type, nosod::kFReject);  // to contender 10
  EXPECT_EQ(ctx.sent()[0].port, 1u);
  EXPECT_EQ(ctx.sent()[1].packet.type, nosod::kFFwd);
  EXPECT_EQ(ctx.sent()[1].packet.field(0), 60);
  ctx.ClearSent();
  // Owner killed by 60: node accepts 60 and re-points; 55 contests the
  // new owner next.
  node->OnMessage(ctx, 7, Packet{nosod::kFFwdAccept, {}});
  ASSERT_EQ(ctx.sent_count(), 2u);
  EXPECT_EQ(ctx.sent()[0].packet.type, nosod::kFAccept);
  EXPECT_EQ(ctx.sent()[0].port, 2u);
  EXPECT_EQ(ctx.sent()[1].packet.type, nosod::kFFwd);
  EXPECT_EQ(ctx.sent()[1].port, 2u);  // forwarded to the NEW owner
  EXPECT_EQ(ctx.sent()[1].packet.field(0), 55);
}

TEST(EfgUnit, RawForwardingPutsEverythingInFlight) {
  MockContext ctx(4, 2, 8);
  auto node = MakeENode(2, 8, /*throttle=*/false);
  node->OnMessage(ctx, 7, Packet{nosod::kFCapture, {50, 1}});
  ctx.ClearSent();
  node->OnMessage(ctx, 1, Packet{nosod::kFCapture, {10, 1}});
  node->OnMessage(ctx, 2, Packet{nosod::kFCapture, {60, 2}});
  node->OnMessage(ctx, 3, Packet{nosod::kFCapture, {55, 2}});
  EXPECT_EQ(ctx.OfType(nosod::kFFwd).size(), 3u);  // no throttle
}

TEST(EfgUnit, GFirstPhaseAsksKNodes) {
  auto factory = nosod::MakeEfgProcess([] {
    nosod::EfgParams p;
    p.k = 3;
    p.g_phases = true;
    return p;
  }());
  MockContext ctx(0, 5, 16);
  auto node = factory(sim::ProcessInit{0, 5, 16});
  node->OnWakeup(ctx);
  auto fps = ctx.OfType(nosod::kGFirstPhase);
  ASSERT_EQ(fps.size(), 3u);
  EXPECT_EQ(fps[0].packet.field(0), 5);
}

TEST(EfgUnit, GFinishResponseKillsCandidate) {
  auto factory = nosod::MakeEfgProcess([] {
    nosod::EfgParams p;
    p.k = 2;
    p.g_phases = true;
    return p;
  }());
  MockContext ctx(0, 5, 16);
  auto node = factory(sim::ProcessInit{0, 5, 16});
  node->OnWakeup(ctx);
  ctx.ClearSent();
  node->OnMessage(ctx, 1, Packet{nosod::kGProceed, {}});
  node->OnMessage(ctx, 2, Packet{nosod::kGFinish, {}});
  // Ordered after a finished node: no second phase, no traffic.
  EXPECT_EQ(ctx.sent_count(), 0u);
  EXPECT_NE(node->DescribeState().find("dead"), std::string::npos);
}

TEST(EfgUnit, GSecondPhaseCapturesProceedResponders) {
  auto factory = nosod::MakeEfgProcess([] {
    nosod::EfgParams p;
    p.k = 2;
    p.g_phases = true;
    return p;
  }());
  MockContext ctx(0, 5, 16);
  auto node = factory(sim::ProcessInit{0, 5, 16});
  node->OnWakeup(ctx);
  ctx.ClearSent();
  node->OnMessage(ctx, 1, Packet{nosod::kGProceed, {}});
  node->OnMessage(ctx, 2, Packet{nosod::kGPAccept, {}});
  // Second phase: capture the proceed responder (port 1) only.
  auto caps = ctx.OfType(nosod::kFCapture);
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps[0].port, 1u);
  EXPECT_EQ(caps[0].packet.field(1), 1);  // level = first-phase accepts
}

TEST(EfgUnit, GCapturedNodeRunsCheckDanceOnce) {
  auto factory = nosod::MakeEfgProcess([] {
    nosod::EfgParams p;
    p.k = 2;
    p.g_phases = true;
    return p;
  }());
  MockContext ctx(3, 4, 16);
  auto node = factory(sim::ProcessInit{3, 4, 16});
  // Captured (passive) by the first-phase message on port 9.
  node->OnMessage(ctx, 9, Packet{nosod::kGFirstPhase, {7}});
  EXPECT_EQ(ctx.single().packet.type, nosod::kGPAccept);
  ctx.ClearSent();
  // Two more askers: exactly one check to the owner, both queued.
  node->OnMessage(ctx, 1, Packet{nosod::kGFirstPhase, {8}});
  node->OnMessage(ctx, 2, Packet{nosod::kGFirstPhase, {9}});
  auto checks = ctx.OfType(nosod::kGCheck);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_EQ(checks[0].port, 9u);
  ctx.ClearSent();
  // Owner not finished: both askers get proceed.
  node->OnMessage(ctx, 9, Packet{nosod::kGCheckReply, {0}});
  auto proceeds = ctx.OfType(nosod::kGProceed);
  EXPECT_EQ(proceeds.size(), 2u);
  ctx.ClearSent();
  // A later asker triggers a fresh check (result was not cached).
  node->OnMessage(ctx, 4, Packet{nosod::kGFirstPhase, {10}});
  EXPECT_EQ(ctx.OfType(nosod::kGCheck).size(), 1u);
  ctx.ClearSent();
  // Owner finished now: the asker gets finish, and the verdict caches.
  node->OnMessage(ctx, 9, Packet{nosod::kGCheckReply, {1}});
  EXPECT_EQ(ctx.OfType(nosod::kGFinish).size(), 1u);
  ctx.ClearSent();
  node->OnMessage(ctx, 5, Packet{nosod::kGFirstPhase, {11}});
  EXPECT_EQ(ctx.single().packet.type, nosod::kGFinish);  // no new check
}

TEST(EfgUnit, FtConfirmRoundLocksAndReleases) {
  auto factory = nosod::MakeEfgProcess([] {
    nosod::EfgParams p;
    p.k = 2;
    p.g_phases = true;
    p.f = 1;
    return p;
  }());
  MockContext ctx(3, 4, 8);
  auto node = factory(sim::ProcessInit{3, 4, 8});
  // Accept candidate 6's elect: strongest accepted becomes 6.
  node->OnMessage(ctx, 1, Packet{nosod::kFElect, {6, 4}});
  EXPECT_EQ(ctx.single().packet.type, nosod::kFElectAccept);
  ctx.ClearSent();
  // Confirm from 6 locks the node.
  node->OnMessage(ctx, 1, Packet{nosod::kFConfirm, {6}});
  EXPECT_EQ(ctx.single().packet.type, nosod::kFConfirmAck);
  ctx.ClearSent();
  // While locked: a stronger rival is rejected (and remembered).
  node->OnMessage(ctx, 2, Packet{nosod::kFElect, {7, 4}});
  EXPECT_EQ(ctx.single().packet.type, nosod::kFElectRejectLocked);
  ctx.ClearSent();
  // Rival's confirm is rejected too.
  node->OnMessage(ctx, 2, Packet{nosod::kFConfirm, {7}});
  EXPECT_EQ(ctx.single().packet.type, nosod::kFConfirmReject);
  ctx.ClearSent();
  // Release from a non-owner port is ignored.
  node->OnMessage(ctx, 5, Packet{nosod::kFRelease, {0}});
  EXPECT_EQ(ctx.sent_count(), 0u);
  // Release from the owner unlocks and hints the strongest rejected.
  node->OnMessage(ctx, 1, Packet{nosod::kFRelease, {0}});
  const auto& hint = ctx.single();
  EXPECT_EQ(hint.packet.type, nosod::kFRetryHint);
  EXPECT_EQ(hint.port, 2u);
  ctx.ClearSent();
  // Unlocked: the rival's retried elect is now accepted.
  node->OnMessage(ctx, 2, Packet{nosod::kFElect, {7, 4}});
  EXPECT_EQ(ctx.single().packet.type, nosod::kFElectAccept);
}

TEST(EfgUnit, FtStaleRejectTriggersRecontest) {
  auto factory = nosod::MakeEfgProcess([] {
    nosod::EfgParams p;
    p.k = 4;  // walk target N/4 = 4
    p.f = 1;  // window 2: levels can go stale
    return p;
  }());
  MockContext ctx(0, 9, 16);
  auto node = factory(sim::ProcessInit{0, 9, 16});
  node->OnWakeup(ctx);  // window of 2 captures on ports 1, 2
  EXPECT_EQ(ctx.OfType(nosod::kFCapture).size(), 2u);
  ctx.ClearSent();
  node->OnMessage(ctx, 1, Packet{nosod::kFAccept, {}});
  node->OnMessage(ctx, 3, Packet{nosod::kFAccept, {}});  // level 2 now
  ctx.ClearSent();
  // A reject for the stale port-2 capture, from credential (1, 5): our
  // current (2, 9) wins, so we re-contest on the same port instead of
  // dying.
  node->OnMessage(ctx, 2, Packet{nosod::kFReject, {5, 1}});
  auto retries = ctx.OfType(nosod::kFCapture);
  ASSERT_EQ(retries.size(), 1u);
  EXPECT_EQ(retries[0].port, 2u);
  EXPECT_EQ(retries[0].packet.field(1), 2);  // current level carried
  ctx.ClearSent();
  // A reject from a credential our current one does not beat is fatal.
  node->OnMessage(ctx, 2, Packet{nosod::kFReject, {5, 7}});
  EXPECT_NE(node->DescribeState().find("dead"), std::string::npos);
}

}  // namespace
}  // namespace celect::proto
