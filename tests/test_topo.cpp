#include <gtest/gtest.h>

#include <set>

#include "celect/topo/complete_graph.h"
#include "celect/topo/ring_math.h"

namespace celect::topo {
namespace {

TEST(RingMath, AtWrapsModulo) {
  RingMath ring(6);
  EXPECT_EQ(ring.At(0, 1), 1u);
  EXPECT_EQ(ring.At(5, 1), 0u);
  EXPECT_EQ(ring.At(4, 5), 3u);
  EXPECT_EQ(ring.At(2, 6), 2u);   // full loop
  EXPECT_EQ(ring.At(2, 13), 3u);  // d > N
}

TEST(RingMath, DistanceIsInverseOfAt) {
  RingMath ring(10);
  for (Position from = 0; from < 10; ++from) {
    for (Distance d = 1; d < 10; ++d) {
      EXPECT_EQ(ring.DistanceBetween(from, ring.At(from, d)), d);
    }
    EXPECT_EQ(ring.DistanceBetween(from, from), 0u);
  }
}

TEST(RingMath, SegmentMatchesPaperNotation) {
  RingMath ring(8);
  // i[1..3] for i = 6: {7, 0, 1}.
  auto seg = ring.Segment(6, 1, 3);
  EXPECT_EQ(seg, (std::vector<Position>{7, 0, 1}));
}

TEST(RingMath, StridedSetForProtocolA) {
  RingMath ring(12);
  // {i[k], i[2k], ..., i[N-k]} for k = 3, i = 0: {3, 6, 9}.
  auto s = ring.Strided(0, 3);
  EXPECT_EQ(s, (std::vector<Position>{3, 6, 9}));
  // Shifted reference.
  auto s2 = ring.Strided(10, 3);
  EXPECT_EQ(s2, (std::vector<Position>{1, 4, 7}));
}

TEST(RingMath, ResidueClassesPartitionTheRing) {
  RingMath ring(12);
  const Distance k = 4;
  std::set<Position> all;
  for (Distance j = 0; j < k; ++j) {
    auto cls = ring.ResidueClass(5, j, k);
    EXPECT_EQ(cls.size(), 12u / k);
    for (Position p : cls) EXPECT_TRUE(all.insert(p).second);
  }
  EXPECT_EQ(all.size(), 12u);
}

TEST(RingMath, Pow2Helpers) {
  EXPECT_EQ(RingMath::FloorPow2(1), 1u);
  EXPECT_EQ(RingMath::FloorPow2(7), 4u);
  EXPECT_EQ(RingMath::FloorPow2(8), 8u);
  EXPECT_EQ(RingMath::CeilPow2(5), 8u);
  EXPECT_EQ(RingMath::CeilPow2(8), 8u);
  EXPECT_EQ(RingMath::FloorLog2(1), 0u);
  EXPECT_EQ(RingMath::FloorLog2(1024), 10u);
  EXPECT_EQ(RingMath::CeilLog2(1), 0u);
  EXPECT_EQ(RingMath::CeilLog2(9), 4u);
  EXPECT_EQ(RingMath::CeilLog2(1024), 10u);
}

TEST(RingMath, ProtocolCStrideMatchesFormula) {
  // k = N / 2^{ceil(log log N)}.
  EXPECT_EQ(RingMath::ProtocolCStride(16), 4u);    // 16 / 2^⌈log2 4⌉ = 2^2
  EXPECT_EQ(RingMath::ProtocolCStride(64), 8u);    // 64 / 2^⌈log2 6⌉ = 2^3
  EXPECT_EQ(RingMath::ProtocolCStride(256), 32u);  // 256 / 2^⌈log2 8⌉ = 2^3
  EXPECT_EQ(RingMath::ProtocolCStride(1024), 64u); // 1024 / 2^⌈log2 10⌉=2^4
}

TEST(RingMath, ProtocolCStrideDividesN) {
  for (std::uint32_t n = 4; n <= 4096; n *= 2) {
    std::uint32_t k = RingMath::ProtocolCStride(n);
    EXPECT_EQ(n % k, 0u) << "n=" << n;
    EXPECT_GE(k, 1u);
    EXPECT_LT(k, n);
  }
}

TEST(CompleteGraph, EdgeCount) {
  CompleteGraph g(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(g.Edges().size(), 15u);
}

TEST(CompleteGraph, SodMapperIsAValidSenseOfDirection) {
  // Figure 1's property, at several sizes.
  for (std::uint32_t n : {2u, 3u, 6u, 16u, 33u}) {
    CompleteGraph g(n);
    auto mapper = sim::MakeSodMapper(n);
    EXPECT_EQ(g.ValidateSenseOfDirection(*mapper), "") << "n=" << n;
    EXPECT_EQ(g.ValidatePortAssignment(*mapper), "") << "n=" << n;
  }
}

TEST(CompleteGraph, RandomMapperIsValidButNotSod) {
  for (std::uint32_t n : {2u, 5u, 16u, 64u}) {
    CompleteGraph g(n);
    auto mapper = sim::MakeRandomMapper(n, /*seed=*/n);
    EXPECT_EQ(g.ValidatePortAssignment(*mapper), "") << "n=" << n;
    EXPECT_NE(g.ValidateSenseOfDirection(*mapper), "");
  }
}

TEST(CompleteGraph, Figure1RenderListsSixNodes) {
  CompleteGraph g(6);
  std::string fig = g.RenderFigure1();
  EXPECT_NE(fig.find("N=6"), std::string::npos);
  EXPECT_NE(fig.find("node 5"), std::string::npos);
  EXPECT_NE(fig.find("[5]->4"), std::string::npos);  // node 5, distance 5
}

}  // namespace
}  // namespace celect::topo
