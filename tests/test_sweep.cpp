// Tests for the parallel sweep engine and the machine-readable bench
// pipeline: ParallelFor scheduling, serial-vs-parallel bit-identity of
// RunSweep reductions, BenchRow aggregation, and JSON rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "celect/harness/bench_json.h"
#include "celect/harness/chaos.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/proto/nosod/protocol_d.h"
#include "celect/proto/nosod/protocol_e.h"

namespace celect::harness {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (std::uint32_t threads : {1u, 2u, 7u, 32u}) {
    const std::size_t kCount = 101;
    std::vector<std::atomic<int>> hits(kCount);
    ParallelFor(kCount, threads, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                   << threads;
    }
  }
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  std::atomic<int> calls{0};
  ParallelFor(0, 8, [&](std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, ZeroThreadsMeansHardwareConcurrency) {
  // threads = 0 must still complete (one worker per hardware thread).
  std::vector<std::atomic<int>> hits(16);
  ParallelFor(16, 0, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, MoreThreadsThanWorkCompletes) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, 64, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, WorkerExceptionRethrownOnCaller) {
  for (std::uint32_t threads : {1u, 4u}) {
    EXPECT_THROW(
        ParallelFor(64, threads,
                    [](std::size_t i) {
                      if (i == 13) throw std::runtime_error("cell 13");
                    }),
        std::runtime_error)
        << "threads " << threads;
  }
}

TEST(ParallelFor, FailureShortCircuitsRemainingWork) {
  // After the throw, workers stop claiming indices: with the failure
  // planted at the front of the grid, far fewer than all indices run.
  std::atomic<int> ran{0};
  const std::size_t kCount = 10000;
  try {
    ParallelFor(kCount, 4, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first cell");
      ran++;
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first cell");
  }
  EXPECT_LT(ran.load(), static_cast<int>(kCount) - 1);
}

std::vector<SweepPoint> MakeDEpsilonGrid() {
  // A D/Ɛ grid: two protocols, three sizes, two seeds each.
  std::vector<SweepPoint> grid;
  for (std::uint32_t n : {8u, 16u, 32u}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      RunOptions o;
      o.n = n;
      o.seed = seed;
      grid.push_back({"D", proto::nosod::MakeProtocolD(), o});
      RunOptions oe = o;
      oe.identity = IdentityKind::kRandomPermutation;
      grid.push_back({"E", proto::nosod::MakeProtocolE(true), oe});
    }
  }
  return grid;
}

TEST(RunSweep, ParallelResultsBitIdenticalToSerial) {
  auto grid = MakeDEpsilonGrid();
  auto serial = RunSweep(grid, SweepOptions{1});
  auto parallel = RunSweep(grid, SweepOptions{8});
  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(FingerprintResult(serial[i]), FingerprintResult(parallel[i]))
        << "grid index " << i;
  }
}

TEST(RunSweep, MergedSummaryBitIdenticalAcrossThreadCounts) {
  // The acceptance property: reducing results in grid-index order via
  // Summary must give byte-identical statistics for any thread count.
  auto grid = MakeDEpsilonGrid();
  auto reduce = [&](std::uint32_t threads) {
    auto results = RunSweep(grid, SweepOptions{threads});
    Summary messages, time;
    for (const auto& r : results) {
      messages.Add(static_cast<double>(r.total_messages));
      time.Add(r.leader_time.ToDouble());
    }
    Summary merged;
    merged.Merge(messages);
    merged.Merge(time);
    return std::tuple{messages, time, merged};
  };
  auto [m1, t1, g1] = reduce(1);
  for (std::uint32_t threads : {2u, 8u}) {
    auto [m, t, g] = reduce(threads);
    // Exact equality, not EXPECT_NEAR: same additions in the same order
    // must give the same bits.
    EXPECT_EQ(m.count(), m1.count());
    EXPECT_EQ(m.mean(), m1.mean());
    EXPECT_EQ(m.variance(), m1.variance());
    EXPECT_EQ(m.min(), m1.min());
    EXPECT_EQ(m.max(), m1.max());
    EXPECT_EQ(t.mean(), t1.mean());
    EXPECT_EQ(t.variance(), t1.variance());
    EXPECT_EQ(g.mean(), g1.mean());
    EXPECT_EQ(g.variance(), g1.variance());
  }
}

TEST(RunSweep, WallClockIsPopulated) {
  std::vector<SweepPoint> grid;
  RunOptions o;
  o.n = 16;
  grid.push_back({"D", proto::nosod::MakeProtocolD(), o});
  auto results = RunSweep(grid, SweepOptions{1});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].wall_ns, 0u);
  EXPECT_GT(results[0].events_per_sec, 0.0);
}

TEST(MakeBenchRow, AggregatesAcrossSeeds) {
  std::vector<SweepPoint> grid;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    RunOptions o;
    o.n = 16;
    o.seed = seed;
    grid.push_back({"D", proto::nosod::MakeProtocolD(), o});
  }
  auto results = RunSweep(grid, SweepOptions{1});
  auto row = MakeBenchRow("D", 16, results);
  EXPECT_EQ(row.protocol, "D");
  EXPECT_EQ(row.n, 16u);
  EXPECT_EQ(row.seed_count, 3u);
  EXPECT_EQ(row.messages.count(), 3u);
  double sum = 0, total_wall = 0;
  for (const auto& r : results) {
    sum += static_cast<double>(r.total_messages);
    total_wall += static_cast<double>(r.wall_ns);
  }
  EXPECT_DOUBLE_EQ(row.messages.mean(), sum / 3.0);
  EXPECT_EQ(static_cast<double>(row.wall_ns), total_wall);
}

TEST(JsonNumber, RendersCleanly) {
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  // Shortest round-trip form: parsing the text must recover the bits.
  double v = 1.0 / 3.0;
  EXPECT_EQ(std::stod(JsonNumber(v)), v);
}

TEST(JsonString, EscapesSpecials) {
  EXPECT_EQ(JsonString("plain"), "\"plain\"");
  EXPECT_EQ(JsonString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonString("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonString("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonString(std::string(1, '\x01')), "\"\\u0001\"");
  // UTF-8 passes through untouched (the Ɛ in protocol labels).
  EXPECT_EQ(JsonString("Ɛ"), "\"Ɛ\"");
}

TEST(BenchReporter, GoldenDocument) {
  // Byte-exact golden for the schema. A deliberate change to the
  // document layout must update this test (and the schema comment in
  // bench_json.h, and tools/check_bench_json.py).
  BenchRow row;
  row.protocol = "D";
  row.n = 8;
  row.seed_count = 2;
  row.messages.Add(56.0);
  row.messages.Add(64.0);
  row.time.Add(2.0);
  row.time.Add(2.5);
  row.wall_ns = 1000;
  row.events_per_sec = 5000.0;
  row.extra.emplace_back("k", 4.0);
  BenchReporter reporter("T1");
  reporter.Add(row);
  std::string expected =
      "{\n  \"suite\": \"T1\",\n  \"git_rev\": " +
      JsonString(BenchReporter::GitRev()) +
      ",\n  \"schema_version\": 2,\n  \"rows\": [\n"
      "    {\"n\": 8, \"protocol\": \"D\", \"seed_count\": 2, "
      "\"messages\": {\"mean\": 60, \"sd\": " +
      JsonNumber(row.messages.stddev()) +
      ", \"min\": 56, \"max\": 64}, "
      "\"time\": {\"mean\": 2.25, \"sd\": " +
      JsonNumber(row.time.stddev()) +
      ", \"min\": 2, \"max\": 2.5}, "
      "\"wall_ns\": 1000, \"events_per_sec\": 5000, "
      "\"extra\": {\"k\": 4}}\n  ]\n}\n";
  EXPECT_EQ(reporter.ToJson(), expected);
}

TEST(BenchReporter, HistogramsSection) {
  BenchReporter reporter("T1h");
  reporter.Add(BenchRow{});
  // Empty telemetry: no "histograms" key at all.
  EXPECT_EQ(reporter.ToJson().find("histograms"), std::string::npos);

  obs::Telemetry t;
  t.latency.Add(1);
  t.latency.Add(3);
  t.queue_depth.Add(0);
  reporter.MergeTelemetry(t);
  std::string json = reporter.ToJson();
  EXPECT_NE(json.find("\"histograms\": {"), std::string::npos);
  EXPECT_NE(json.find("\"latency\": {\"count\": 2, \"sum\": 4, "
                      "\"min\": 1, \"max\": 3, \"mean\": 2, \"p50\": 3, "
                      "\"p90\": 3, \"p99\": 3, \"buckets\": [0, 1, 1]}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"queue_depth\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"capture_width\": {\"count\": 0"),
            std::string::npos);
}

TEST(BenchReporter, WriteFileRoundTrips) {
  BenchRow row;
  row.protocol = "E";
  row.n = 4;
  BenchReporter reporter("T2");
  reporter.Add(row);
  std::string path = ::testing::TempDir() + "/celect_bench_roundtrip.json";
  ASSERT_TRUE(reporter.WriteFile(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, reporter.ToJson());
  std::remove(path.c_str());
}

TEST(BenchReporter, WriteFileFailsOnBadPath) {
  BenchReporter reporter("T3");
  EXPECT_FALSE(reporter.WriteFile("/nonexistent-dir/x/y.json"));
}

}  // namespace
}  // namespace celect::harness
