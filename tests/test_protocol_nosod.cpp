// Protocol-level tests for the no-sense-of-direction family: D, E,
// E-raw, F, G (paper §4).
#include <gtest/gtest.h>

#include <cmath>

#include "celect/proto/nosod/efg_engine.h"
#include "celect/proto/nosod/protocol_d.h"
#include "celect/proto/nosod/protocol_e.h"
#include "celect/proto/nosod/protocol_f.h"
#include "celect/proto/nosod/protocol_g.h"
#include "test_util.h"

namespace celect::proto::nosod {
namespace {

using harness::DelayKind;
using harness::MapperKind;
using harness::RunOptions;
using harness::WakeupKind;
using test::RunAndCheck;

RunOptions NoSodOptions(std::uint32_t n) {
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kRandom;
  return o;
}

// ---- Protocol D -------------------------------------------------------

TEST(ProtocolD, ElectsMaxBaseNode) {
  for (std::uint32_t n : {2u, 5u, 16u, 64u}) {
    auto o = NoSodOptions(n);
    auto r = RunAndCheck(MakeProtocolD(), o);
    EXPECT_EQ(r.leader_id, sim::Id{n});  // ascending ids, all base
  }
}

TEST(ProtocolD, ConstantTime) {
  for (std::uint32_t n : {16u, 64u, 256u}) {
    auto o = NoSodOptions(n);
    auto r = RunAndCheck(MakeProtocolD(), o);
    EXPECT_LE(r.leader_time.ToDouble(), 2.0) << "n=" << n;
  }
}

TEST(ProtocolD, QuadraticMessagesWhenAllAreBase) {
  auto o = NoSodOptions(64);
  auto r = RunAndCheck(MakeProtocolD(), o);
  EXPECT_GE(r.total_messages, 64u * 63u);       // every base floods
  EXPECT_LE(r.total_messages, 2u * 64u * 63u);  // plus accepts
}

TEST(ProtocolD, SubsetOfBaseNodesElectsTheirMax) {
  auto o = NoSodOptions(32);
  o.wakeup = WakeupKind::kSingle;
  auto r = RunAndCheck(MakeProtocolD(), o);
  EXPECT_EQ(r.leader_id, sim::Id{1});
}

// ---- Protocol E -------------------------------------------------------

TEST(ProtocolE, ElectsUniqueLeaderAcrossSizes) {
  for (std::uint32_t n : {2u, 3u, 8u, 16u, 32u}) {
    auto o = NoSodOptions(n);
    RunAndCheck(MakeProtocolE(), o);
  }
}

TEST(ProtocolE, RandomisedExecutions) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto o = NoSodOptions(24);
    o.seed = seed;
    o.delay = DelayKind::kRandom;
    o.wakeup = WakeupKind::kRandomSubset;
    o.wakeup_count = 1 + static_cast<std::uint32_t>(seed % 23);
    o.wakeup_window = 2.0;
    o.identity = harness::IdentityKind::kRandomPermutation;
    RunAndCheck(MakeProtocolE(), o);
  }
}

TEST(ProtocolE, MessagesWithinNLogN) {
  for (std::uint32_t n : {32u, 128u}) {
    auto o = NoSodOptions(n);
    auto r = RunAndCheck(MakeProtocolE(), o);
    double log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(r.total_messages, 8.0 * n * log_n) << "n=" << n;
  }
}

TEST(ProtocolE, ThrottleKeepsForwardQueueFlat) {
  // With the Ɛ throttle a node has at most one forwarded message
  // outstanding; the raw AG85 variant can pile them up.
  auto o = NoSodOptions(64);
  auto throttled = RunAndCheck(MakeProtocolE(true), o);
  auto raw = RunAndCheck(MakeProtocolE(false), o);
  auto t_it = throttled.counters.find(kCounterFwdQueuePeak);
  if (t_it != throttled.counters.end()) {
    // Peak pending contenders can exceed 1, but the in-flight forwards
    // per link stay at 1 — link load is the observable.
  }
  EXPECT_LE(throttled.max_link_load, raw.max_link_load + 8)
      << "throttled runs should not be more congested than raw";
}

TEST(ProtocolERaw, StillElectsUniqueLeader) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto o = NoSodOptions(24);
    o.seed = seed;
    o.delay = DelayKind::kRandom;
    RunAndCheck(MakeProtocolE(false), o);
  }
}

// ---- Protocol F -------------------------------------------------------

TEST(ProtocolF, ElectsUniqueLeaderAcrossK) {
  for (std::uint32_t n : {16u, 32u, 64u}) {
    for (std::uint32_t k : {2u, 4u, 8u, 16u}) {
      auto o = NoSodOptions(n);
      RunAndCheck(MakeProtocolF(k), o);
    }
  }
}

TEST(ProtocolF, LargeKActsLikeFlooding) {
  auto o = NoSodOptions(32);
  auto r = RunAndCheck(MakeProtocolF(32), o);  // target level ⌈N/k⌉ = 1
  EXPECT_LE(r.leader_time.ToDouble(), 8.0);
}

TEST(ProtocolF, TimeShrinksAsKGrows) {
  const std::uint32_t n = 128;
  auto o = NoSodOptions(n);
  auto slow = RunAndCheck(MakeProtocolF(4), o);
  auto fast = RunAndCheck(MakeProtocolF(64), o);
  EXPECT_LT(fast.leader_time.ToDouble(), slow.leader_time.ToDouble());
}

TEST(ProtocolF, MessagesGrowWithK) {
  const std::uint32_t n = 128;
  auto o = NoSodOptions(n);
  auto small_k = RunAndCheck(MakeProtocolF(4), o);
  auto large_k = RunAndCheck(MakeProtocolF(64), o);
  EXPECT_LT(small_k.total_messages, large_k.total_messages);
}

TEST(ProtocolF, RandomisedExecutions) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto o = NoSodOptions(32);
    o.seed = seed;
    o.delay = DelayKind::kRandom;
    o.identity = harness::IdentityKind::kSparse;
    RunAndCheck(MakeProtocolF(8), o);
  }
}

// ---- Protocol G -------------------------------------------------------

TEST(ProtocolG, ElectsUniqueLeaderAcrossSizesAndK) {
  for (std::uint32_t n : {8u, 16u, 32u, 64u}) {
    for (std::uint32_t k : {2u, 4u, 8u}) {
      auto o = NoSodOptions(n);
      RunAndCheck(MakeProtocolG(k), o);
    }
  }
}

TEST(ProtocolG, MessageOptimalKHelper) {
  EXPECT_EQ(MessageOptimalK(2), 1u);
  EXPECT_EQ(MessageOptimalK(16), 4u);
  EXPECT_EQ(MessageOptimalK(1000), 10u);
  EXPECT_EQ(MessageOptimalK(1024), 10u);
}

TEST(ProtocolG, SingleBaseNodeStillWins) {
  auto o = NoSodOptions(32);
  o.wakeup = WakeupKind::kSingle;
  auto r = RunAndCheck(MakeProtocolG(4), o);
  EXPECT_EQ(r.leader_id, sim::Id{1});
}

TEST(ProtocolG, StaggeredWakeupStaysFast) {
  // The whole point of G: F's staggered-wakeup weakness is gone. Time
  // stays O(N/k) even when base nodes wake one by one.
  const std::uint32_t n = 128;
  const std::uint32_t k = 16;
  auto o = NoSodOptions(n);
  o.wakeup = WakeupKind::kStaggeredChain;
  o.stagger_spacing = 0.9;
  auto r = RunAndCheck(MakeProtocolG(k), o);
  // Not Θ(N): the Lemma 4.3 cadence bounds it well below the 0.9·N ≈ 115
  // the chain forces on wakeup-naive protocols.
  EXPECT_LE(r.leader_time.ToDouble(), 0.55 * n) << "n=" << n;
}

TEST(ProtocolG, RandomisedExecutions) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto o = NoSodOptions(24);
    o.seed = seed;
    o.delay = seed % 2 ? DelayKind::kRandom : DelayKind::kUnit;
    o.wakeup = WakeupKind::kRandomSubset;
    o.wakeup_count = 1 + static_cast<std::uint32_t>((3 * seed) % 23);
    o.wakeup_window = 4.0;
    o.identity = harness::IdentityKind::kRandomPermutation;
    RunAndCheck(MakeProtocolG(4), o);
  }
}

TEST(ProtocolG, MessagesScaleWithNk) {
  for (std::uint32_t n : {32u, 64u, 128u}) {
    std::uint32_t k = MessageOptimalK(n);
    auto o = NoSodOptions(n);
    auto r = RunAndCheck(MakeProtocolG(k), o);
    EXPECT_LE(r.total_messages, 14.0 * n * k) << "n=" << n;
  }
}

// ---- Protocol G2 (the [Si92] doubling-walk refinement) ----------------

TEST(ProtocolG2, ElectsUniqueLeaderAcrossSizesAndK) {
  for (std::uint32_t n : {8u, 16u, 32u, 64u}) {
    for (std::uint32_t k : {2u, 4u, 8u}) {
      auto o = NoSodOptions(n);
      RunAndCheck(MakeProtocolGDoubling(k), o);
    }
  }
}

TEST(ProtocolG2, RandomisedExecutions) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto o = NoSodOptions(24);
    o.seed = seed;
    o.delay = seed % 2 ? DelayKind::kRandom : DelayKind::kUnit;
    o.wakeup = WakeupKind::kRandomSubset;
    o.wakeup_count = 1 + static_cast<std::uint32_t>((5 * seed) % 23);
    o.wakeup_window = 2.0;
    o.identity = harness::IdentityKind::kRandomPermutation;
    RunAndCheck(MakeProtocolGDoubling(4), o);
  }
}

TEST(ProtocolG2, FewBaseNodesMuchFasterThanG) {
  // The point of the refinement: with r = 1 base node, G's sequential
  // walk costs ~2·N/k time while G2's doubling costs ~2·log(N/k).
  const std::uint32_t n = 512;
  const std::uint32_t k = MessageOptimalK(n);
  auto o = NoSodOptions(n);
  o.wakeup = WakeupKind::kSingle;
  auto g = RunAndCheck(MakeProtocolG(k), o);
  auto g2 = RunAndCheck(MakeProtocolGDoubling(k), o);
  EXPECT_LT(4.0 * g2.leader_time.ToDouble(), g.leader_time.ToDouble());
}

TEST(ProtocolG2, MessagesStayWithinNk) {
  for (std::uint32_t n : {64u, 128u}) {
    std::uint32_t k = MessageOptimalK(n);
    auto o = NoSodOptions(n);
    auto r = RunAndCheck(MakeProtocolGDoubling(k), o);
    EXPECT_LE(r.total_messages, 14.0 * n * k) << "n=" << n;
  }
}

}  // namespace
}  // namespace celect::proto::nosod
