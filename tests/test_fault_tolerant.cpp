// Fault-tolerant election under initial crash failures (paper §4,
// BKWZ87 technique).
#include "celect/proto/nosod/fault_tolerant.h"

#include <gtest/gtest.h>

#include <cmath>

#include "celect/harness/chaos.h"
#include "celect/proto/nosod/protocol_g.h"
#include "test_util.h"

namespace celect::proto::nosod {
namespace {

using harness::DelayKind;
using harness::MapperKind;
using harness::RunOptions;
using harness::WakeupKind;
using test::RunAndCheck;

RunOptions FtOptions(std::uint32_t n, std::uint32_t failures) {
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kRandom;
  o.failures = failures;
  return o;
}

TEST(FaultTolerant, NoFailuresBehavesLikeG) {
  for (std::uint32_t n : {8u, 16u, 32u}) {
    auto o = FtOptions(n, 0);
    RunAndCheck(MakeFaultTolerant(0), o);
  }
}

TEST(FaultTolerant, SurvivesSingleFailure) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto o = FtOptions(16, 1);
    o.seed = seed;
    RunAndCheck(MakeFaultTolerant(1), o);
  }
}

TEST(FaultTolerant, SurvivesManyFailures) {
  for (std::uint32_t f : {2u, 4u, 7u}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      auto o = FtOptions(32, f);
      o.seed = seed;
      RunAndCheck(MakeFaultTolerant(f), o);
    }
  }
}

TEST(FaultTolerant, LeaderIsNeverAFailedNode) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto o = FtOptions(24, 5);
    o.seed = seed;
    auto config = harness::BuildNetwork(o);
    std::vector<bool> failed = config.failed;
    std::vector<sim::Id> ids = config.identities;
    sim::Runtime rt(std::move(config), MakeFaultTolerant(5));
    auto r = rt.Run();
    ASSERT_EQ(r.leader_declarations, 1u) << "seed=" << seed;
    ASSERT_TRUE(r.leader_node.has_value());
    EXPECT_FALSE(failed[*r.leader_node]);
  }
}

TEST(FaultTolerant, RandomDelaysAndFailures) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto o = FtOptions(20, 3);
    o.seed = seed;
    o.delay = DelayKind::kRandom;
    o.identity = harness::IdentityKind::kRandomPermutation;
    RunAndCheck(MakeFaultTolerant(3), o);
  }
}

TEST(FaultTolerant, MessageOverheadIsBounded) {
  // O(Nf + N log N): with f = 4 and N = 64 the run must stay within a
  // small constant of N·(f + log N).
  const std::uint32_t n = 64, f = 4;
  auto o = FtOptions(n, f);
  auto r = RunAndCheck(MakeFaultTolerant(f), o);
  double bound = 16.0 * n * (f + std::log2(static_cast<double>(n)));
  EXPECT_LE(r.total_messages, bound);
}

TEST(FaultTolerant, WindowRequiresFBelowHalf) {
  auto o = FtOptions(8, 0);
  EXPECT_DEATH(harness::RunElection(MakeFaultTolerant(4), o),
               "f < \\(N-1\\)/2");
}

TEST(FaultTolerant, StaggeredWakeupWithFailures) {
  auto o = FtOptions(32, 3);
  o.wakeup = WakeupKind::kStaggeredChain;
  o.stagger_spacing = 0.9;
  RunAndCheck(MakeFaultTolerant(3), o);
}

// Regression: the capture window > 1 lets two top candidates cross stale
// credentials; without credential-carrying rejects and re-contesting,
// they mutually killed each other (seed 1091 originally deadlocked).
TEST(FaultTolerant, StaleCredentialCrossingRegression) {
  auto o = FtOptions(64, 16);
  o.seed = 1091;
  o.delay = DelayKind::kRandom;
  RunAndCheck(MakeFaultTolerant(16), o);
}

// Up-to-f semantics: safety and liveness must hold when *fewer* than the
// budget actually fail. Without the confirm round, a slow rival could
// assemble a second N-1-f quorum after the first leader declared (seeds
// around 31276 produced two leaders); without the maxid/accepted-max
// distinction, high-id dead nodes could never confirm and the confirm
// quorum starved (seeds around 31232 produced zero leaders).
struct UnderBudgetCase {
  std::uint32_t n;
  std::uint32_t budget;
  std::uint32_t actual;
};

class FtUnderBudget : public ::testing::TestWithParam<UnderBudgetCase> {};

TEST_P(FtUnderBudget, ExactlyOneLeader) {
  const auto& c = GetParam();
  for (std::uint64_t seed = 31270; seed < 31290; ++seed) {
    auto o = FtOptions(c.n, c.actual);
    o.seed = seed;
    o.delay = seed % 2 ? DelayKind::kRandom : DelayKind::kUnit;
    RunAndCheck(MakeFaultTolerant(c.budget), o);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BudgetVsActual, FtUnderBudget,
    ::testing::Values(UnderBudgetCase{16, 4, 0}, UnderBudgetCase{16, 4, 2},
                      UnderBudgetCase{32, 7, 0}, UnderBudgetCase{32, 7, 6},
                      UnderBudgetCase{64, 2, 0}, UnderBudgetCase{64, 2, 1},
                      UnderBudgetCase{64, 7, 6}),
    [](const ::testing::TestParamInfo<UnderBudgetCase>& info) {
      // Built with += rather than operator+ chains: GCC 12's -Wrestrict
      // misfires on `"lit" + std::string&&` at -O3 (GCC PR 105329).
      std::string name = "N";
      name += std::to_string(info.param.n);
      name += "_budget";
      name += std::to_string(info.param.budget);
      name += "_actual";
      name += std::to_string(info.param.actual);
      return name;
    });

// --- mid-run crashes (chaos harness) ---------------------------------
//
// The initial-failure tests above exercise the §4 BKWZ87 budget; these
// kill up to f nodes *during* the run, at seed-chosen adversarial
// moments (absolute times, send/receive counts, first capture-type
// message), and require that a unique leader is still declared — by a
// node that is alive at quiescence.

TEST(FaultTolerantChaos, UniqueLiveLeaderUnderMidRunCrashes) {
  harness::ChaosOptions opt;
  opt.n = 16;
  opt.max_crashes = 2;
  auto sweep =
      harness::SweepChaos(MakeFaultTolerant(2), /*seed0=*/100, 25, opt);
  EXPECT_GT(sweep.crashes_injected, 0u);
  for (const auto& v : sweep.violations) {
    ADD_FAILURE() << harness::Describe(v);
  }
}

TEST(FaultTolerantChaos, SurvivesCrashesPlusLossyLinks) {
  harness::ChaosOptions opt;
  opt.n = 16;
  opt.max_crashes = 2;
  opt.loss = 0.03;
  auto sweep =
      harness::SweepChaos(MakeFaultTolerant(2), /*seed0=*/500, 20, opt);
  EXPECT_GT(sweep.messages_lost, 0u);
  EXPECT_GT(sweep.timers_fired, 0u);  // loss recovery is timer-driven
  for (const auto& v : sweep.violations) {
    ADD_FAILURE() << harness::Describe(v);
  }
}

TEST(FaultTolerantChaos, HigherBudgetTakesMoreCrashes) {
  harness::ChaosOptions opt;
  opt.n = 24;
  opt.max_crashes = 4;
  auto sweep =
      harness::SweepChaos(MakeFaultTolerant(4), /*seed0=*/900, 20, opt);
  for (const auto& v : sweep.violations) {
    ADD_FAILURE() << harness::Describe(v);
  }
}

TEST(FaultTolerantChaos, SafetyHoldsBeyondTheBudget) {
  // Three crashes against f=1: liveness may be lost (and usually is),
  // but there must never be two leaders, and a declared leader must not
  // be a crashed node.
  harness::ChaosOptions opt;
  opt.n = 16;
  opt.max_crashes = 3;
  opt.require_leader = false;
  auto sweep =
      harness::SweepChaos(MakeFaultTolerant(1), /*seed0=*/2000, 20, opt);
  for (const auto& v : sweep.violations) {
    ADD_FAILURE() << harness::Describe(v);
  }
}

TEST(FaultTolerantChaos, FaultFreeRunArmsTimersOnlyUnderFtBudget) {
  // With f = 0 the FT engine is protocol G: no timer is ever armed, so
  // the fault machinery cannot perturb fault-free benchmarks.
  harness::RunOptions o;
  o.n = 16;
  o.mapper = MapperKind::kRandom;
  auto r0 = harness::RunElection(MakeFaultTolerant(0), o);
  EXPECT_EQ(r0.timers_set, 0u);
  // With f > 0 timers arm (watchdogs) but a clean run never fires one
  // late enough to matter: every armed timer is cancelled or absorbed.
  auto r1 = harness::RunElection(MakeFaultTolerant(2), o);
  EXPECT_EQ(r1.leader_declarations, 1u);
}

}  // namespace
}  // namespace celect::proto::nosod
