// A scripted Context for driving a single Process by hand.
//
// Protocol tests at the Runtime level check end-to-end outcomes; these
// mocks pin down the per-message semantics — which reply goes out on
// which port for a given incoming packet and local state. Sent packets
// are recorded in order; tests feed packets in and assert on the outbox.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "celect/sim/process.h"

namespace celect::test {

struct SentPacket {
  sim::Port port;
  wire::Packet packet;
};

class MockContext : public sim::Context {
 public:
  MockContext(sim::NodeId address, sim::Id id, std::uint32_t n)
      : address_(address), id_(id), n_(n) {}

  // --- Context interface -------------------------------------------
  sim::NodeId address() const override { return address_; }
  sim::Id id() const override { return id_; }
  std::uint32_t n() const override { return n_; }
  sim::Time now() const override { return now_; }
  bool has_sense_of_direction() const override { return sod_; }

  void Send(sim::Port port, wire::Packet p) override {
    sent_.push_back({port, std::move(p)});
  }
  std::optional<sim::Port> SendFresh(wire::Packet p) override {
    sim::Port port = next_fresh_++;
    if (port > n_ - 1) return std::nullopt;
    sent_.push_back({port, std::move(p)});
    return port;
  }
  void SendAll(wire::Packet p) override {
    for (sim::Port port = 1; port <= n_ - 1; ++port) {
      sent_.push_back({port, p});
    }
  }
  sim::TimerId SetTimer(sim::Time delay) override {
    timers_.push_back({++last_timer_, now_ + delay});
    return last_timer_;
  }
  void CancelTimer(sim::TimerId timer) override {
    std::erase_if(timers_, [timer](const auto& t) { return t.id == timer; });
  }
  void DeclareLeader() override { ++leader_declarations_; }
  void AddCounter(std::string_view, std::int64_t) override {}
  void MaxCounter(std::string_view, std::int64_t) override {}
  // Keep the CounterRef overloads visible (and inert) despite the
  // string overrides above hiding the base names.
  void AddCounter(const sim::CounterRef&, std::int64_t) override {}
  void MaxCounter(const sim::CounterRef&, std::int64_t) override {}

  // --- scripting helpers -------------------------------------------
  void set_sense_of_direction(bool sod) { sod_ = sod; }
  void set_now(sim::Time t) { now_ = t; }

  const std::vector<SentPacket>& sent() const { return sent_; }
  std::size_t sent_count() const { return sent_.size(); }
  std::uint32_t leader_declarations() const { return leader_declarations_; }

  // Armed (not yet cancelled) timers, in arming order.
  struct ArmedTimer {
    sim::TimerId id;
    sim::Time deadline;
  };
  const std::vector<ArmedTimer>& timers() const { return timers_; }

  // Drops recorded traffic (typically after asserting on it).
  void ClearSent() { sent_.clear(); }

  // The single packet sent since the last Clear; fails the test if the
  // outbox doesn't hold exactly one.
  const SentPacket& single() const {
    EXPECT_EQ(sent_.size(), 1u);
    static const SentPacket kEmpty{0, {}};
    return sent_.empty() ? kEmpty : sent_.front();
  }

  // All packets of a given type.
  std::vector<SentPacket> OfType(std::uint16_t type) const {
    std::vector<SentPacket> out;
    for (const auto& s : sent_) {
      if (s.packet.type == type) out.push_back(s);
    }
    return out;
  }

 private:
  sim::NodeId address_;
  sim::Id id_;
  std::uint32_t n_;
  bool sod_ = true;
  sim::Time now_;
  sim::Port next_fresh_ = 1;
  std::vector<SentPacket> sent_;
  std::vector<ArmedTimer> timers_;
  sim::TimerId last_timer_ = sim::kInvalidTimer;
  std::uint32_t leader_declarations_ = 0;
};

}  // namespace celect::test
