// The §5 lower-bound adversary: locality of Up-first binding and the
// empirical time floor for message-optimal protocols.
#include <gtest/gtest.h>

#include "celect/adversary/lower_bound.h"
#include "celect/proto/nosod/protocol_e.h"
#include "celect/proto/nosod/protocol_g.h"
#include "test_util.h"

namespace celect::adversary {
namespace {

TEST(TheoremFloor, MatchesFormula) {
  EXPECT_DOUBLE_EQ(TheoremFloor(1600, 10), 10.0);
  EXPECT_DOUBLE_EQ(TheoremFloor(256, 8), 2.0);
}

TEST(LowerBound, ProtocolGStillElectsUnderAdversary) {
  for (std::uint32_t n : {16u, 32u, 64u}) {
    auto r = RunLowerBoundExperiment(
        proto::nosod::MakeProtocolG(proto::nosod::MessageOptimalK(n)), n,
        /*k=*/8);
    EXPECT_TRUE(r.leader_elected) << "n=" << n;
  }
}

TEST(LowerBound, TimeExceedsTheoreticalFloor) {
  // Theorem 5.1: under the adversary, a protocol that stays within the
  // Nd budget cannot beat N/16d time. Our message-optimal G should sit
  // above the floor (the floor is for the *best possible* protocol).
  for (std::uint32_t n : {64u, 128u, 256u}) {
    std::uint32_t gk = proto::nosod::MessageOptimalK(n);
    auto r = RunLowerBoundExperiment(proto::nosod::MakeProtocolG(gk), n,
                                     /*k=*/2 * gk);
    EXPECT_TRUE(r.leader_elected);
    EXPECT_GE(r.elapsed_time, r.theoretical_floor)
        << "n=" << n << " " << ToString(r);
  }
}

TEST(LowerBound, ElectionTimeGrowsLinearlyWithN) {
  // With k fixed, the adversary forces time Ω(N): the walk must cross
  // the whole identity line one neighbourhood at a time.
  auto small = RunLowerBoundExperiment(
      proto::nosod::MakeProtocolG(4), 64, /*k=*/8);
  auto large = RunLowerBoundExperiment(
      proto::nosod::MakeProtocolG(4), 256, /*k=*/8);
  ASSERT_TRUE(small.leader_elected && large.leader_elected);
  EXPECT_GE(large.elapsed_time, 2.0 * small.elapsed_time);
}

TEST(LowerBound, UpFirstKeepsEarlyCommunicationLocal) {
  // Run protocol E under the adversary and check the locality diagnostic:
  // most traffic is confined to small identity distances (the giant
  // distances come only from late global phases, if any).
  auto r = RunLowerBoundExperiment(proto::nosod::MakeProtocolE(), 32,
                                   /*k=*/4);
  EXPECT_TRUE(r.leader_elected);
  EXPECT_GT(r.mean_degree, 0.0);
  EXPECT_LE(r.mean_degree, 32.0);
}

TEST(LowerBound, ReportStringMentionsKeyFields) {
  auto r = RunLowerBoundExperiment(proto::nosod::MakeProtocolG(4), 16,
                                   /*k=*/4);
  std::string s = ToString(r);
  EXPECT_NE(s.find("N=16"), std::string::npos);
  EXPECT_NE(s.find("floor"), std::string::npos);
}

}  // namespace
}  // namespace celect::adversary
