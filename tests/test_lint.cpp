// celect_lint self-test: every rule family fires exactly on its
// fixture line (tests/lint_fixtures mirrors the celect/ layout with
// one deliberately-bad snippet per rule), and the real src/ tree is
// clean. CELECT_LINT_FIXTURES / CELECT_SRC_ROOT are absolute paths
// injected by tests/CMakeLists.txt.
#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lint.h"

namespace celect::lint {
namespace {

// "file:line rule severity" — enough to pin a finding to a fixture
// line without coupling the test to message wording.
std::vector<std::string> Keys(const LintResult& r) {
  std::vector<std::string> out;
  out.reserve(r.findings.size());
  for (const Finding& f : r.findings) {
    out.push_back(f.file + ":" + std::to_string(f.line) + " " + f.rule +
                  " " + f.severity);
  }
  return out;
}

TEST(LintFixtures, EveryRuleFiresExactlyOnItsFixtureLine) {
  LintResult r = LintTree(CELECT_LINT_FIXTURES);
  EXPECT_EQ(r.files_scanned, 10u);
  const std::vector<std::string> expected = {
      "celect/proto/bad_engine.cpp:7 proto-observe error",
      "celect/proto/bad_engine.cpp:7 proto-phase-spans error",
      "celect/proto/bad_engine.h:11 proto-packet-arms error",
      "celect/proto/bad_engine.h:12 proto-packet-arms error",
      "celect/sim/bad_layering.cpp:2 layering error",
      "celect/sim/bad_pointer_key.cpp:13 no-pointer-keys error",
      "celect/sim/bad_pointer_key.cpp:14 no-pointer-keys error",
      "celect/sim/bad_rng.cpp:9 no-unseeded-rng error",
      "celect/sim/bad_rng.cpp:10 no-unseeded-rng error",
      "celect/sim/bad_rng.cpp:11 no-unseeded-rng error",
      "celect/sim/bad_suppression.cpp:9 bad-suppression error",
      "celect/sim/bad_suppression.cpp:11 bad-suppression error",
      "celect/sim/bad_suppression.cpp:12 bad-suppression error",
      "celect/sim/bad_suppression.cpp:13 unused-suppression warning",
      "celect/sim/bad_unordered.cpp:12 no-unordered-iteration error",
      "celect/sim/bad_unordered.cpp:13 no-unordered-iteration error",
      "celect/sim/bad_wallclock.cpp:8 no-wall-clock error",
      "celect/sim/bad_wallclock.cpp:9 no-wall-clock error",
      "celect/sim/metrics.h:9 metrics-surfaced error",
  };
  EXPECT_EQ(Keys(r), expected);
  EXPECT_TRUE(r.HasErrors());
  EXPECT_EQ(r.ErrorCount(), 18u);
  EXPECT_EQ(r.WarningCount(), 1u);
}

// The justified suppression in bad_suppression.cpp (line 7) and the
// justification-free-but-parseable one (line 9) both silence the
// steady_clock read on the following line: no no-wall-clock finding
// may escape that file.
TEST(LintFixtures, JustifiedSuppressionSilencesTheNextLine) {
  LintResult r = LintTree(CELECT_LINT_FIXTURES);
  for (const Finding& f : r.findings) {
    if (f.file == "celect/sim/bad_suppression.cpp") {
      EXPECT_NE(f.rule, "no-wall-clock") << FormatFinding(f);
    }
  }
}

// The negative halves of the contract rules: kPing (handler + send
// site) and live_counter() (consumed by the harness emitter) must NOT
// be reported.
TEST(LintFixtures, SatisfiedContractsStayQuiet) {
  LintResult r = LintTree(CELECT_LINT_FIXTURES);
  for (const Finding& f : r.findings) {
    EXPECT_EQ(f.message.find("kPing"), std::string::npos)
        << FormatFinding(f);
    EXPECT_EQ(f.message.find("live_counter"), std::string::npos)
        << FormatFinding(f);
  }
}

// The acceptance gate CI enforces: the real source tree carries zero
// unsuppressed findings, errors and warnings alike.
TEST(LintRealTree, SrcIsClean) {
  LintResult r = LintTree(CELECT_SRC_ROOT);
  EXPECT_GT(r.files_scanned, 100u);
  for (const Finding& f : r.findings) {
    ADD_FAILURE() << FormatFinding(f);
  }
}

TEST(LintOutput, FormatFindingIsFileLineSeverityRuleMessage) {
  Finding f{"celect/sim/x.cpp", 12, "no-wall-clock", "error", "boom"};
  EXPECT_EQ(FormatFinding(f),
            "celect/sim/x.cpp:12: error: [no-wall-clock] boom");
}

TEST(LintOutput, JsonCarriesCountsAndEscapes) {
  LintResult r;
  r.files_scanned = 3;
  r.findings.push_back(
      {"a.cpp", 1, "layering", "error", "a \"quoted\" message"});
  r.findings.push_back({"b.cpp", 2, "no-wall-clock", "warning", "w"});
  std::string json = FindingsJson(r);
  EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("a \\\"quoted\\\" message"), std::string::npos)
      << json;
}

TEST(LintOutput, EmptyResultJsonIsWellFormed) {
  LintResult r;
  EXPECT_EQ(FindingsJson(r),
            "{\n  \"files_scanned\": 0,\n  \"errors\": 0,\n"
            "  \"warnings\": 0,\n  \"findings\": []\n}\n");
}

TEST(LintRules, EveryFamilyIsRegistered) {
  const std::vector<std::string>& ids = RuleIds();
  for (const char* id :
       {"no-wall-clock", "no-unseeded-rng", "no-unordered-iteration",
        "no-pointer-keys", "proto-observe", "proto-phase-spans",
        "proto-packet-arms", "metrics-surfaced", "layering",
        "bad-suppression", "unused-suppression"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

TEST(LintRules, MissingRootReportsInsteadOfCrashing) {
  LintResult r = LintTree("/nonexistent/celect/lint/root");
  EXPECT_EQ(r.files_scanned, 0u);
}

}  // namespace
}  // namespace celect::lint
