#include "celect/util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace celect {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound :
       {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 30}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, NextInRangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextPositiveDoubleNeverZero) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    double d = rng.NextPositiveDouble();
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(19);
  for (std::uint32_t n : {1u, 2u, 5u, 100u, 1000u}) {
    auto p = rng.Permutation(n);
    ASSERT_EQ(p.size(), n);
    std::set<std::uint32_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), n);
    if (n > 0) {
      EXPECT_EQ(*seen.begin(), 0u);
      EXPECT_EQ(*seen.rbegin(), n - 1);
    }
  }
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(23);
  Rng child0 = parent.Split(0);
  Rng child1 = parent.Split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child0.Next() == child1.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(29), b(29);
  Rng ca = a.Split(5), cb = b.Split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.Next(), cb.Next());
}

TEST(Rng, SplitStreamGoldenValues) {
  // Pinned outputs for seed 0x5EED. These freeze the cross-version
  // stream contract: every committed BENCH_*.json and every seed quoted
  // in a bug report implicitly depends on Split(s) producing exactly
  // these streams. If this test breaks, the generator changed and all
  // recorded seeds/goldens are invalidated — bump them deliberately.
  const std::uint64_t kSplit0[4] = {
      0x30f95e2afaf45930ULL, 0x3304c0ebb84d3fbfULL, 0x18d280aff9822b9bULL,
      0xbc51c414d8b243daULL};
  const std::uint64_t kSplit1[4] = {
      0x4914b9486461ace1ULL, 0x67be8dd05f3a12c3ULL, 0xf463c086d816d8c0ULL,
      0xeaa134a88713ad17ULL};
  const std::uint64_t kSplitFa17[4] = {
      0xe7b5e4c2c194fef0ULL, 0xe49b695c83296affULL, 0x30fe177675b0d7f6ULL,
      0x0c9c55cbcb2a7d51ULL};
  Rng parent(0x5EED);
  Rng c0 = parent.Split(0);
  Rng c1 = parent.Split(1);
  Rng cf = parent.Split(0xFA17);  // the chaos-plan stream tag
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c0.Next(), kSplit0[i]) << i;
    EXPECT_EQ(c1.Next(), kSplit1[i]) << i;
    EXPECT_EQ(cf.Next(), kSplitFa17[i]) << i;
  }
  // Splitting is a pure function of the parent's seed material: it must
  // not advance or perturb the parent's own stream.
  EXPECT_EQ(parent.Next(), 0xef33f17055244b74ULL);
  Rng fresh(0x5EED);
  fresh.Next();
  EXPECT_EQ(parent.Next(), fresh.Next());
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 2, 3, 5, 8, 13};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, UniformBitGeneratorInterface) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(37);
  EXPECT_NE(rng(), rng());
}

TEST(Rng, RoughUniformityOfLowBits) {
  Rng rng(41);
  int buckets[8] = {};
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.NextBelow(8)];
  for (int b = 0; b < 8; ++b) {
    EXPECT_NEAR(buckets[b], kDraws / 8, kDraws / 80) << "bucket " << b;
  }
}

}  // namespace
}  // namespace celect
