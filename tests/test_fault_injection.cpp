// Fault injection end to end: crash triggers, timers, drop-cause
// accounting, fault-plan validation, and the deterministic chaos
// harness (same seed -> bit-identical run).
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "celect/harness/chaos.h"
#include "celect/harness/experiment.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/sim/network.h"
#include "celect/sim/runtime.h"

namespace celect::sim {
namespace {

constexpr std::uint16_t kPing = 1;
constexpr std::uint16_t kPong = 2;

// Node 0 pings everyone; everyone pongs back; node 0 declares when all
// pongs arrive. Deterministic enough to assert exact message counts
// under every crash trigger.
class PingPong : public Process {
 public:
  explicit PingPong(const ProcessInit& init) : n_(init.n) {}

  void OnWakeup(Context& ctx) override {
    ctx.SendAll(wire::Packet{kPing, {ctx.id()}});
  }

  void OnMessage(Context& ctx, Port from_port,
                 const wire::Packet& p) override {
    if (p.type == kPing) {
      ctx.Send(from_port, wire::Packet{kPong, {}});
    } else if (++pongs_ == n_ - 1) {
      ctx.DeclareLeader();
    }
  }

 private:
  std::uint32_t n_;
  std::uint32_t pongs_ = 0;
};

ProcessFactory PingPongFactory() {
  return [](const ProcessInit& init) {
    return std::make_unique<PingPong>(init);
  };
}

NetworkConfig BasicConfig(std::uint32_t n) {
  NetworkConfig c;
  c.n = n;
  c.mapper = MakeSodMapper(n);
  c.delays = MakeUnitDelay();
  c.wakeup = WakeSingle(n, 0);
  return c;
}

TEST(FaultInjection, TimedCrashSilencesNodeMidRun) {
  NetworkConfig c = BasicConfig(6);
  CrashSpec spec;
  spec.node = 3;
  spec.trigger = CrashSpec::Trigger::kAtTime;
  spec.at = Time::FromDouble(0.5);  // after the pings left, before arrival
  c.faults.crashes.push_back(spec);
  Runtime rt(std::move(c), PingPongFactory());
  auto r = rt.Run();
  // Node 3's ping arrives at t=1 into a dead node: one drop, one missing
  // pong, no declaration.
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.leader_declarations, 0u);
  EXPECT_EQ(r.total_messages, 5u + 4u);
  EXPECT_EQ(r.counters.at("sim.dropped_to_crashed"), 1);
  EXPECT_TRUE(rt.failed()[3]);
}

TEST(FaultInjection, AfterSendsCrashSwallowsRestOfHandler) {
  NetworkConfig c = BasicConfig(6);
  CrashSpec spec;
  spec.node = 0;
  spec.trigger = CrashSpec::Trigger::kAfterSends;
  spec.count = 2;
  c.faults.crashes.push_back(spec);
  Runtime rt(std::move(c), PingPongFactory());
  auto r = rt.Run();
  // Node 0 dies mid-SendAll: the first two pings go out (they left
  // before the crash), the remaining three vanish unsent. Two pongs come
  // back to a dead node and drop.
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.messages_by_type.at(kPing), 2u);
  EXPECT_EQ(r.messages_by_type.at(kPong), 2u);
  EXPECT_EQ(r.counters.at("sim.dropped_to_crashed"), 2);
  EXPECT_EQ(r.leader_declarations, 0u);
}

TEST(FaultInjection, AfterReceivesCrashProcessesThenDies) {
  NetworkConfig c = BasicConfig(6);
  CrashSpec spec;
  spec.node = 0;
  spec.trigger = CrashSpec::Trigger::kAfterReceives;
  spec.count = 3;
  c.faults.crashes.push_back(spec);
  Runtime rt(std::move(c), PingPongFactory());
  auto r = rt.Run();
  // All five pings and pongs are sent; node 0 processes pongs 1-3 (the
  // third is delivered, then the node dies) and drops pongs 4-5.
  EXPECT_EQ(r.messages_by_type.at(kPing), 5u);
  EXPECT_EQ(r.messages_by_type.at(kPong), 5u);
  EXPECT_EQ(r.counters.at("sim.dropped_to_crashed"), 2);
  EXPECT_EQ(r.leader_declarations, 0u);
}

TEST(FaultInjection, OnMessageTypeCrashDiesWithMessageUnread) {
  NetworkConfig c = BasicConfig(6);
  CrashSpec spec;
  spec.node = 4;
  spec.trigger = CrashSpec::Trigger::kOnMessageType;
  spec.message_type = kPing;
  c.faults.crashes.push_back(spec);
  Runtime rt(std::move(c), PingPongFactory());
  auto r = rt.Run();
  // Node 4 dies on its ping *instead of* processing it: no pong from it,
  // and the ping counts as a drop, not a delivery.
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.messages_by_type.at(kPong), 4u);
  EXPECT_EQ(r.counters.at("sim.dropped_to_crashed"), 1);
  EXPECT_EQ(r.leader_declarations, 0u);
}

TEST(FaultInjection, InjectedLossIsCountedSeparatelyFromCrashDrops) {
  NetworkConfig c = BasicConfig(8);
  c.faults.link.loss = 1.0;  // every message vanishes in transit
  c.faults.seed = 11;
  Runtime rt(std::move(c), PingPongFactory());
  auto r = rt.Run();
  EXPECT_EQ(r.messages_lost, 7u);  // the 7 pings; no pong is ever sent
  EXPECT_EQ(r.counters.at("sim.dropped_to_loss"), 7);
  EXPECT_EQ(r.counters.count("sim.dropped_to_crashed"), 0u);
  EXPECT_EQ(r.leader_declarations, 0u);
}

TEST(FaultInjection, DuplicationDeliversACopyWithoutReordering) {
  NetworkConfig c = BasicConfig(4);
  c.faults.link.duplicate = 1.0;
  c.faults.seed = 11;
  Runtime rt(std::move(c), PingPongFactory());
  auto r = rt.Run();
  // Every message is doubled; PingPong's pong counter over-counts and it
  // still declares (idempotence is the protocol's business — the FT
  // engine is tested for that separately).
  EXPECT_EQ(r.messages_duplicated, r.total_messages);
  EXPECT_GE(r.leader_declarations, 1u);
}

// --- timers -----------------------------------------------------------

constexpr std::uint16_t kEcho = 3;

// Arms a watchdog on wakeup; if the echo comes back first the watchdog
// is cancelled, otherwise the watchdog declares.
class TimerProcess : public Process {
 public:
  explicit TimerProcess(bool responsive) : responsive_(responsive) {}

  void OnWakeup(Context& ctx) override {
    watchdog_ = ctx.SetTimer(Time::FromUnits(5));
    ctx.Send(1, wire::Packet{kEcho, {}});
  }

  void OnMessage(Context& ctx, Port from_port,
                 const wire::Packet& p) override {
    if (ctx.address() != 0) {
      if (responsive_) ctx.Send(from_port, p);
      return;
    }
    ctx.CancelTimer(watchdog_);
    ctx.DeclareLeader();
  }

  void OnTimer(Context& ctx, TimerId timer) override {
    if (timer == watchdog_) ctx.DeclareLeader();
  }

 private:
  bool responsive_;
  TimerId watchdog_ = kInvalidTimer;
};

TEST(FaultInjection, TimerFiresWhenNoAnswerArrives) {
  NetworkConfig c = BasicConfig(3);
  Runtime rt(std::move(c), [](const ProcessInit&) {
    return std::make_unique<TimerProcess>(/*responsive=*/false);
  });
  auto r = rt.Run();
  EXPECT_EQ(r.timers_set, 1u);
  EXPECT_EQ(r.timers_fired, 1u);
  EXPECT_EQ(r.leader_declarations, 1u);
  EXPECT_DOUBLE_EQ(r.leader_time.ToDouble(), 5.0);
}

TEST(FaultInjection, CancelledTimerNeverFiresNorStretchesTheClock) {
  NetworkConfig c = BasicConfig(3);
  Runtime rt(std::move(c), [](const ProcessInit&) {
    return std::make_unique<TimerProcess>(/*responsive=*/true);
  });
  auto r = rt.Run();
  EXPECT_EQ(r.timers_set, 1u);
  EXPECT_EQ(r.timers_fired, 0u);
  EXPECT_EQ(r.leader_declarations, 1u);
  // The echo round-trip finishes at t=2; the cancelled t=5 watchdog must
  // not drag quiescence out to its deadline.
  EXPECT_DOUBLE_EQ(r.quiesce_time.ToDouble(), 2.0);
}

TEST(FaultInjection, TimersDieWithTheirNode) {
  NetworkConfig c = BasicConfig(3);
  CrashSpec spec;
  spec.node = 0;
  spec.trigger = CrashSpec::Trigger::kAtTime;
  spec.at = Time::FromUnits(3);  // after arming, before the t=5 deadline
  c.faults.crashes.push_back(spec);
  Runtime rt(std::move(c), [](const ProcessInit&) {
    return std::make_unique<TimerProcess>(/*responsive=*/false);
  });
  auto r = rt.Run();
  EXPECT_EQ(r.timers_set, 1u);
  EXPECT_EQ(r.timers_fired, 0u);
  EXPECT_EQ(r.leader_declarations, 0u);
}

// --- validation -------------------------------------------------------

TEST(FaultInjection, MidRunCrashVictimMayBeABaseNode) {
  // The distinction documented in network.h: node 0 is the only base
  // node AND the crash victim — legal, it lived before it died. (An
  // *initially*-failed base node is rejected by ValidateConfig.)
  NetworkConfig c = BasicConfig(4);
  CrashSpec spec;
  spec.node = 0;
  spec.trigger = CrashSpec::Trigger::kAfterSends;
  c.faults.crashes.push_back(spec);
  ValidateConfig(c);  // must not CHECK-fail
  Runtime rt(std::move(c), PingPongFactory());
  EXPECT_EQ(rt.Run().faults_injected, 1u);
}

TEST(FaultInjectionDeathTest, RejectsOutOfRangeVictim) {
  FaultPlan plan;
  plan.crashes.push_back(CrashSpec{.node = 9});
  EXPECT_DEATH(ValidateFaultPlan(plan, 4), "");
}

TEST(FaultInjectionDeathTest, RejectsRatesOutsideUnitInterval) {
  FaultPlan plan;
  plan.link.loss = 1.5;
  EXPECT_DEATH(ValidateFaultPlan(plan, 4), "");
}

TEST(FaultInjectionDeathTest, RejectsZeroCountTrigger) {
  FaultPlan plan;
  CrashSpec spec;
  spec.trigger = CrashSpec::Trigger::kAfterSends;
  spec.count = 0;
  plan.crashes.push_back(spec);
  EXPECT_DEATH(ValidateFaultPlan(plan, 4), "");
}

}  // namespace
}  // namespace celect::sim

// --- chaos harness ----------------------------------------------------

namespace celect::harness {
namespace {

using proto::nosod::MakeFaultTolerant;

TEST(ChaosHarness, SameSeedIsBitReproducible) {
  ChaosOptions opt;
  opt.n = 16;
  opt.max_crashes = 2;
  opt.loss = 0.02;
  opt.duplicate = 0.02;
  for (std::uint64_t seed : {1ull, 77ull, 4096ull}) {
    auto a = RunChaosCase(MakeFaultTolerant(2), seed, opt);
    auto b = RunChaosCase(MakeFaultTolerant(2), seed, opt);
    EXPECT_EQ(FingerprintResult(a.result), FingerprintResult(b.result))
        << "seed=" << seed;
    EXPECT_EQ(a.violation, b.violation);
    EXPECT_EQ(a.failed_after, b.failed_after);
  }
}

TEST(ChaosHarness, DifferentSeedsProduceDifferentPlans) {
  ChaosOptions opt;
  opt.max_crashes = 3;
  auto p1 = MakeChaosPlan(1, opt);
  auto p2 = MakeChaosPlan(2, opt);
  ASSERT_EQ(p1.crashes.size(), 3u);
  bool differ = false;
  for (std::size_t i = 0; i < 3; ++i) {
    differ = differ || p1.crashes[i].node != p2.crashes[i].node ||
             p1.crashes[i].trigger != p2.crashes[i].trigger;
  }
  EXPECT_TRUE(differ);
}

TEST(ChaosHarness, FaultFreePlanMatchesPlainRun) {
  // A chaos case with zero crashes and zero link rates is the baseline
  // run: the fault machinery must not perturb the schedule.
  ChaosOptions opt;
  opt.n = 12;
  opt.max_crashes = 0;
  auto chaos = RunChaosCase(MakeFaultTolerant(2), /*seed=*/5, opt);
  RunOptions ro;
  ro.n = 12;
  ro.seed = 5;
  ro.mapper = opt.mapper;
  ro.delay = opt.delay;
  auto plain = RunElection(MakeFaultTolerant(2), ro);
  EXPECT_EQ(FingerprintResult(chaos.result), FingerprintResult(plain));
  EXPECT_TRUE(chaos.violation.empty()) << chaos.violation;
}

TEST(ChaosHarness, RegistrySweepHoldsSafetyUnderCrashesAndLoss) {
  auto report = SweepRegistryChaos(/*seed0=*/9000, /*seeds_per_protocol=*/3,
                                   /*n=*/16);
  EXPECT_GT(report.cases, 0u);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << v.protocol << " seed=" << v.seed << ": " << v.violation;
  }
}

}  // namespace
}  // namespace celect::harness
