// Reliability-session tests: a differential suite driving two sessions
// through seeded FakeLinks. Chaos sweeps assert exactly-once in-order
// delivery under loss/duplication/reordering/corruption, with bounded
// retransmit effort; epoch tests pin restart detection and stale-session
// rejection; the handshake tests cover kill-during-handshake and the
// suspicion episode lifecycle. Everything runs on a VirtualClock and is
// bit-reproducible per seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "celect/net/fake_link.h"
#include "celect/net/reliable.h"
#include "celect/wire/checksum.h"
#include "celect/wire/packet_codec.h"
#include "celect/wire/varint.h"

namespace celect::net {
namespace {

wire::Packet MakePacket(std::int64_t tag) {
  wire::Packet p;
  p.type = 7;
  p.fields.push_back(tag);
  return p;
}

// Two sessions joined by a chaos link pair, plus a tiny event loop.
struct Pair {
  VirtualClock clock;
  ReliableSession a;
  ReliableSession b;
  FakeLink ab;  // a -> b
  FakeLink ba;  // b -> a
  std::vector<wire::Packet> got_a;  // delivered to a
  std::vector<wire::Packet> got_b;
  std::vector<TraceContext> tc_b;   // trace context riding each delivery
  bool b_attached = true;  // false models a dead/unstarted peer

  Pair(const SessionParams& sp, const FakeLinkParams& lp,
       std::uint64_t epoch_a = 0xA, std::uint64_t epoch_b = 0xB)
      : a(epoch_a, sp), b(epoch_b, WithSeed(sp, sp.seed + 1)),
        ab(lp), ba(WithSeed(lp, lp.seed + 1)) {}

  static SessionParams WithSeed(SessionParams sp, std::uint64_t seed) {
    sp.seed = seed;
    return sp;
  }
  static FakeLinkParams WithSeed(FakeLinkParams lp, std::uint64_t seed) {
    lp.seed = seed;
    return lp;
  }

  void Flush() {
    Micros now = clock.Now();
    for (auto& d : a.outbox()) ab.Send(d, now);
    a.outbox().clear();
    for (auto& d : b.outbox()) {
      if (b_attached) ba.Send(d, now);
    }
    b.outbox().clear();
  }

  void Pump() {
    Micros now = clock.Now();
    std::vector<std::vector<std::uint8_t>> due;
    ba.DeliverDue(now, due);
    for (auto& d : due) a.OnDatagram(d.data(), d.size(), now);
    due.clear();
    ab.DeliverDue(now, due);
    if (b_attached) {
      for (auto& d : due) b.OnDatagram(d.data(), d.size(), now);
    }
    a.Tick(now);
    if (b_attached) b.Tick(now);
    Flush();
    for (auto& d : a.delivered()) got_a.push_back(std::move(d.packet));
    a.delivered().clear();
    for (auto& d : b.delivered()) {
      tc_b.push_back(d.tc);
      got_b.push_back(std::move(d.packet));
    }
    b.delivered().clear();
  }

  std::optional<Micros> NextEvent() const {
    std::optional<Micros> next;
    auto consider = [&next](std::optional<Micros> t) {
      if (t && (!next || *t < *next)) next = t;
    };
    consider(ab.NextDelivery());
    consider(ba.NextDelivery());
    consider(a.NextWake());
    if (b_attached) consider(b.NextWake());
    return next;
  }

  // Runs the loop until `until` (or quiescence), pumping every event.
  void RunUntil(Micros until) {
    Pump();
    for (;;) {
      auto next = NextEvent();
      if (!next || *next > until) break;
      clock.AdvanceTo(std::max(*next, clock.Now() + 1));
      Pump();
    }
  }
};

TEST(NetReliable, CleanLinkDeliversInOrderExactlyOnce) {
  SessionParams sp;
  FakeLinkParams lp;
  Pair pair(sp, lp);
  for (int i = 0; i < 100; ++i) {
    pair.a.SendPacket(MakePacket(i), pair.clock.Now());
  }
  pair.RunUntil(5'000'000);
  ASSERT_EQ(pair.got_b.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(pair.got_b[i].field(0), i);
  EXPECT_TRUE(pair.a.established());
  EXPECT_TRUE(pair.b.established());
  EXPECT_EQ(pair.a.stats().data_retransmits, 0u);
  EXPECT_EQ(pair.b.stats().duplicates, 0u);
}

TEST(NetReliable, WindowBoundsInFlightFrames) {
  SessionParams sp;
  sp.window = 8;
  FakeLinkParams lp;
  Pair pair(sp, lp);
  for (int i = 0; i < 50; ++i) {
    pair.a.SendPacket(MakePacket(i), pair.clock.Now());
    EXPECT_LE(pair.a.in_flight(), 8u);
  }
  pair.RunUntil(10'000'000);
  EXPECT_EQ(pair.got_b.size(), 50u);
  EXPECT_EQ(pair.a.in_flight(), 0u);
  EXPECT_EQ(pair.a.queued(), 0u);
}

TEST(NetReliable, DifferentialChaosSweep) {
  // Sweep seeded chaos rates; under every mix the contract holds:
  // exactly-once, in-order, both directions, with retransmit effort
  // bounded by a small multiple of the traffic.
  struct Mix {
    double loss, dup, reorder, corrupt;
  };
  const Mix mixes[] = {
      {0.00, 0.00, 0.00, 0.00},
      {0.10, 0.00, 0.00, 0.00},
      {0.00, 0.20, 0.30, 0.00},
      {0.00, 0.00, 0.00, 0.05},
      {0.15, 0.10, 0.20, 0.02},
      {0.30, 0.10, 0.10, 0.05},
  };
  for (const Mix& m : mixes) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      SessionParams sp;
      sp.rto_initial = 20'000;
      sp.seed = seed;
      FakeLinkParams lp;
      lp.loss = m.loss;
      lp.duplicate = m.dup;
      lp.reorder = m.reorder;
      lp.corrupt = m.corrupt;
      lp.seed = seed * 101;
      Pair pair(sp, lp);
      constexpr int kForward = 160;
      constexpr int kBackward = 40;
      for (int i = 0; i < kForward; ++i) {
        pair.a.SendPacket(MakePacket(i), pair.clock.Now());
      }
      for (int i = 0; i < kBackward; ++i) {
        pair.b.SendPacket(MakePacket(1000 + i), pair.clock.Now());
      }
      pair.RunUntil(120'000'000);
      ASSERT_EQ(pair.got_b.size(), static_cast<std::size_t>(kForward))
          << "loss=" << m.loss << " seed=" << seed;
      ASSERT_EQ(pair.got_a.size(), static_cast<std::size_t>(kBackward))
          << "loss=" << m.loss << " seed=" << seed;
      for (int i = 0; i < kForward; ++i) {
        ASSERT_EQ(pair.got_b[i].field(0), i) << "out of order";
      }
      for (int i = 0; i < kBackward; ++i) {
        ASSERT_EQ(pair.got_a[i].field(0), 1000 + i) << "out of order";
      }
      // Retransmit effort stays proportional to traffic even at 30%
      // loss: each frame expects ~1/(1-p) transmissions; allow slack.
      EXPECT_LE(pair.a.stats().data_retransmits,
                static_cast<std::uint64_t>(kForward) * 4 + 64)
          << "loss=" << m.loss << " seed=" << seed;
    }
  }
}

std::uint64_t TranscriptHash(Pair& pair) {
  wire::Fnv1aStream h;
  auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h.Update(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  for (const auto& p : pair.got_b) {
    fold(static_cast<std::uint64_t>(p.field(0)));
  }
  for (const auto& p : pair.got_a) {
    fold(static_cast<std::uint64_t>(p.field(0)));
  }
  fold(pair.a.stats().data_retransmits);
  fold(pair.b.stats().acks_sent);
  fold(pair.ab.delivered());
  fold(pair.ba.lost());
  fold(pair.clock.Now());
  return h.Digest64();
}

TEST(NetReliable, ChaosRunsAreBitReproduciblePerSeed) {
  auto run = [](std::uint64_t seed) {
    SessionParams sp;
    sp.seed = seed;
    FakeLinkParams lp;
    lp.loss = 0.2;
    lp.duplicate = 0.1;
    lp.reorder = 0.2;
    lp.corrupt = 0.03;
    lp.seed = seed * 7;
    Pair pair(sp, lp);
    for (int i = 0; i < 120; ++i) {
      pair.a.SendPacket(MakePacket(i), pair.clock.Now());
    }
    pair.RunUntil(60'000'000);
    return TranscriptHash(pair);
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(1), run(9));  // the seed actually steers the chaos
}

TEST(NetReliable, PeerRestartIsDetectedAndStreamResyncs) {
  SessionParams sp;
  FakeLinkParams lp;
  Pair pair(sp, lp);
  for (int i = 0; i < 10; ++i) {
    pair.a.SendPacket(MakePacket(i), pair.clock.Now());
  }
  pair.RunUntil(2'000'000);
  ASSERT_EQ(pair.got_b.size(), 10u);

  // Kill B: replace it with a fresh incarnation under a new epoch.
  pair.b = ReliableSession(0xB2, Pair::WithSeed(sp, 99));
  pair.got_b.clear();
  // A keeps sending; B2 must Reset the unknown stream, the handshake
  // must re-run, and delivery must resume exactly once, in order.
  for (int i = 10; i < 20; ++i) {
    pair.a.SendPacket(MakePacket(i), pair.clock.Now());
  }
  pair.RunUntil(30'000'000);
  EXPECT_TRUE(pair.a.TakePeerRestart() || pair.a.stats().peer_restarts > 0);
  ASSERT_EQ(pair.got_b.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(pair.got_b[i].field(0), 10 + i);
  EXPECT_GE(pair.b.stats().resets_sent + pair.a.stats().resets_received, 0u);
}

TEST(NetReliable, StaleAcksFromDeadIncarnationAreRejected) {
  SessionParams sp;
  FakeLinkParams lp;
  Pair pair(sp, lp);
  pair.a.SendPacket(MakePacket(0), pair.clock.Now());
  pair.RunUntil(2'000'000);
  ASSERT_TRUE(pair.a.established());

  // Capture an ack datagram from the old B incarnation by making B ack
  // a fresh data frame, but deliver it to A only after B restarts.
  pair.a.SendPacket(MakePacket(1), pair.clock.Now());
  pair.Flush();
  std::vector<std::vector<std::uint8_t>> due;
  Micros later = pair.clock.Now() + 1'000'000;
  pair.ab.DeliverDue(later, due);
  for (auto& d : due) pair.b.OnDatagram(d.data(), d.size(), later);
  pair.b.Tick(later);
  std::vector<std::vector<std::uint8_t>> stale_acks = pair.b.outbox();
  pair.b.outbox().clear();
  ASSERT_FALSE(stale_acks.empty());

  // B restarts; A adopts the new epoch; then the old ack arrives.
  pair.b = ReliableSession(0xB3, Pair::WithSeed(sp, 77));
  pair.clock.AdvanceTo(later);
  pair.RunUntil(later + 20'000'000);
  std::uint64_t stale_before = pair.a.stats().stale_epoch;
  for (auto& d : stale_acks) {
    pair.a.OnDatagram(d.data(), d.size(), pair.clock.Now());
  }
  EXPECT_GT(pair.a.stats().stale_epoch, stale_before)
      << "an ack from a dead incarnation must be dropped as stale";
}

TEST(NetReliable, KillDuringHandshakeRaisesSuspicionThenRecovers) {
  SessionParams sp;
  sp.rto_initial = 10'000;
  sp.max_retries = 4;
  FakeLinkParams lp;
  Pair pair(sp, lp);
  pair.b_attached = false;  // the peer is dead before it ever answers
  pair.a.SendPacket(MakePacket(42), pair.clock.Now());
  bool suspected = false;
  pair.Pump();
  for (int step = 0; step < 400 && !suspected; ++step) {
    auto next = pair.NextEvent();
    ASSERT_TRUE(next.has_value()) << "handshake retry gave up silently";
    pair.clock.AdvanceTo(*next);
    pair.Pump();
    suspected = pair.a.TakeSuspect();
  }
  EXPECT_TRUE(suspected) << "hello exhaustion must raise suspicion";
  EXPECT_FALSE(pair.a.established());
  EXPECT_FALSE(pair.a.TakeSuspect()) << "one signal per episode";

  // The peer finally boots. The still-probing handshake must complete
  // and the queued packet must arrive.
  pair.b_attached = true;
  pair.RunUntil(pair.clock.Now() + 60'000'000);
  ASSERT_EQ(pair.got_b.size(), 1u);
  EXPECT_EQ(pair.got_b[0].field(0), 42);
  EXPECT_TRUE(pair.a.established());
}

TEST(NetReliable, SuspicionEpisodesResetOnRecovery) {
  SessionParams sp;
  sp.rto_initial = 10'000;
  sp.max_retries = 3;
  FakeLinkParams lp;
  Pair pair(sp, lp);
  pair.a.SendPacket(MakePacket(0), pair.clock.Now());
  pair.RunUntil(1'000'000);
  ASSERT_TRUE(pair.a.established());

  auto starve_until_suspect = [&pair]() {
    pair.b_attached = false;
    pair.a.SendPacket(MakePacket(1), pair.clock.Now());
    for (int step = 0; step < 400; ++step) {
      auto next = pair.NextEvent();
      if (!next) break;
      pair.clock.AdvanceTo(*next);
      pair.Pump();
      if (pair.a.TakeSuspect()) return true;
    }
    return false;
  };
  EXPECT_TRUE(starve_until_suspect());
  // Peer comes back: ack progress ends the episode...
  pair.b_attached = true;
  pair.RunUntil(pair.clock.Now() + 30'000'000);
  EXPECT_EQ(pair.a.in_flight(), 0u);
  // ...and a second outage raises a *new* episode.
  EXPECT_TRUE(starve_until_suspect());
  EXPECT_EQ(pair.a.stats().suspicions, 2u);
}

TEST(NetReliable, CorruptDatagramsNeverDeliverWrongPackets) {
  SessionParams sp;
  FakeLinkParams lp;
  lp.corrupt = 0.5;  // half of all datagrams take bit flips
  lp.seed = 1234;
  Pair pair(sp, lp);
  for (int i = 0; i < 60; ++i) {
    pair.a.SendPacket(MakePacket(i), pair.clock.Now());
  }
  pair.RunUntil(240'000'000);
  ASSERT_EQ(pair.got_b.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(pair.got_b[i].field(0), i);
  EXPECT_GT(pair.b.stats().frame_errors + pair.a.stats().frame_errors, 0u);
}

TEST(NetReliable, RttSampleCapTruncatesVisibly) {
  SessionParams sp;
  sp.rtt_sample_cap = 8;
  FakeLinkParams lp;
  Pair pair(sp, lp);
  for (int i = 0; i < 50; ++i) {
    pair.a.SendPacket(MakePacket(i), pair.clock.Now());
  }
  pair.RunUntil(30'000'000);
  ASSERT_EQ(pair.got_b.size(), 50u);
  const SessionStats& st = pair.a.stats();
  // The bounded percentile buffer stops at the cap, the overflow is
  // counted, and the histogram keeps absorbing every sample.
  EXPECT_EQ(st.rtt_samples.size(), 8u);
  EXPECT_GT(st.rtt_samples_dropped, 0u);
  EXPECT_EQ(st.rtt_samples.size() + st.rtt_samples_dropped, st.rtt_count);
  EXPECT_EQ(st.rtt_us.count(), st.rtt_count);
}

TEST(NetReliable, WrongWireVersionIsRejectedAtTheDoor) {
  SessionParams sp;
  ReliableSession s(0xB0B, sp);

  // A future-version peer: Hello carrying kWireVersion + 1.
  std::vector<std::uint8_t> payload;
  wire::PutVarint(payload, 0xA11CE);           // epoch
  wire::PutVarint(payload, 1);                 // start seq
  wire::PutVarint(payload, kWireVersion + 1);  // version
  std::vector<std::uint8_t> dgram;
  EncodeFrame(FrameKind::kHello, payload, dgram);
  s.OnDatagram(dgram.data(), dgram.size(), 1000);
  EXPECT_EQ(s.stats().version_mismatch, 1u);
  EXPECT_EQ(s.remote_epoch(), 0u);
  EXPECT_TRUE(s.outbox().empty()) << "no HelloAck for a rejected peer";

  // A version-1 peer: its Hello predates the version field entirely.
  payload.clear();
  wire::PutVarint(payload, 0xA11CE);
  wire::PutVarint(payload, 1);
  dgram.clear();
  EncodeFrame(FrameKind::kHello, payload, dgram);
  s.OnDatagram(dgram.data(), dgram.size(), 2000);
  EXPECT_EQ(s.stats().version_mismatch, 2u);
  EXPECT_FALSE(s.established());
  EXPECT_TRUE(s.outbox().empty());
}

TEST(NetReliable, TraceContextSurvivesTheWire) {
  SessionParams sp;
  FakeLinkParams lp;
  lp.loss = 0.2;  // retransmits must not re-stamp the frozen context
  lp.seed = 77;
  Pair pair(sp, lp);
  for (int i = 0; i < 40; ++i) {
    pair.a.SendPacket(MakePacket(i), pair.clock.Now(),
                      TraceContext{100u + static_cast<std::uint64_t>(i),
                                   5000u + static_cast<std::uint64_t>(i)});
  }
  pair.RunUntil(120'000'000);
  ASSERT_EQ(pair.got_b.size(), 40u);
  ASSERT_EQ(pair.tc_b.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(pair.got_b[i].field(0), i);
    EXPECT_EQ(pair.tc_b[i].clock, 100u + static_cast<std::uint64_t>(i));
    EXPECT_EQ(pair.tc_b[i].mid, 5000u + static_cast<std::uint64_t>(i));
  }
}

}  // namespace
}  // namespace celect::net
