// Chordal-ring structure and coordinator election ([ALSZ89] extension).
#include <gtest/gtest.h>

#include <cmath>

#include "celect/proto/chordal/coordinator.h"
#include "celect/sim/runtime.h"
#include "celect/topo/chordal_ring.h"
#include "test_util.h"

namespace celect {
namespace {

using harness::DelayKind;
using harness::MapperKind;
using harness::RunOptions;
using harness::WakeupKind;
using test::RunAndCheck;

TEST(ChordalRing, ChordSetIsPowersOfTwo) {
  topo::ChordalRing ring(16);
  EXPECT_EQ(ring.chords_per_node(), 4u);
  EXPECT_EQ(ring.chord_distances(),
            (std::vector<std::uint32_t>{1, 2, 4, 8}));
}

TEST(ChordalRing, ChordMembershipIncludesReverseLabels) {
  topo::ChordalRing ring(16);
  for (std::uint32_t d : {1u, 2u, 4u, 8u}) {
    EXPECT_TRUE(ring.IsChordDistance(d)) << d;
    EXPECT_TRUE(ring.IsChordDistance(16 - d)) << 16 - d;  // reverse
  }
  EXPECT_FALSE(ring.IsChordDistance(5));
  EXPECT_FALSE(ring.IsChordDistance(6));
  EXPECT_FALSE(ring.IsChordDistance(13));
}

TEST(ChordalRing, RoutingDecomposition) {
  topo::ChordalRing ring(64);
  EXPECT_EQ(ring.FirstHop(1), 1u);
  EXPECT_EQ(ring.FirstHop(37), 32u);
  EXPECT_EQ(ring.FirstHop(63), 32u);
  EXPECT_EQ(ring.HopCount(37), 3u);  // 32 + 4 + 1
  EXPECT_EQ(ring.HopCount(63), 6u);
  EXPECT_EQ(ring.HopCount(0), 0u);
}

TEST(ChordalRing, ForwardDistanceWraps) {
  topo::ChordalRing ring(8);
  EXPECT_EQ(ring.ForwardDistance(2, 5), 3u);
  EXPECT_EQ(ring.ForwardDistance(5, 2), 5u);
  EXPECT_EQ(ring.ForwardDistance(3, 3), 0u);
}

RunOptions ChordalOptions(std::uint32_t n) {
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kSenseOfDirection;  // ports = ring distances
  return o;
}

TEST(ChordalCoordinator, ElectsUniqueLeaderAcrossSizes) {
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    auto o = ChordalOptions(n);
    RunAndCheck(proto::chordal::MakeChordalCoordinator(), o);
  }
}

TEST(ChordalCoordinator, LeaderIsMaxBaseIdWhenAllWakeTogether) {
  auto o = ChordalOptions(64);
  auto r = RunAndCheck(proto::chordal::MakeChordalCoordinator(), o);
  EXPECT_EQ(r.leader_id, sim::Id{64});
}

TEST(ChordalCoordinator, SingleBaseNodeWinsFromAnyPosition) {
  for (sim::NodeId base : {0u, 1u, 7u, 15u}) {
    harness::RunOptions o = ChordalOptions(16);
    auto config = harness::BuildNetwork(o);
    config.wakeup.wakeups = {{base, sim::Time::Zero()}};
    sim::Runtime rt(std::move(config),
                    proto::chordal::MakeChordalCoordinator());
    auto r = rt.Run();
    EXPECT_EQ(r.leader_declarations, 1u) << "base=" << base;
    EXPECT_EQ(r.leader_id, sim::Id{base + 1});
  }
}

TEST(ChordalCoordinator, MessagesAreLinear) {
  for (std::uint32_t n : {64u, 256u, 1024u}) {
    auto o = ChordalOptions(n);
    auto r = RunAndCheck(proto::chordal::MakeChordalCoordinator(), o);
    // N-1 queries + N-1 reports + starts/announce routing. All N nodes
    // are base here, so starts add up to r·logN; still within ~2N+NlogN…
    // with a single base node the total is tightly 2N + O(log N):
    EXPECT_GE(r.total_messages, 2u * (n - 1));
  }
  // Tight bound with one base node.
  auto o = ChordalOptions(512);
  o.wakeup = WakeupKind::kSingle;
  auto r = RunAndCheck(proto::chordal::MakeChordalCoordinator(), o);
  EXPECT_LE(r.total_messages, 2u * 512u + 32u);
}

TEST(ChordalCoordinator, TimeIsLogarithmic) {
  for (std::uint32_t n : {64u, 256u, 1024u}) {
    auto o = ChordalOptions(n);
    auto r = RunAndCheck(proto::chordal::MakeChordalCoordinator(), o);
    double log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(r.leader_time.ToDouble(), 4.0 * log_n + 4) << "n=" << n;
  }
}

TEST(ChordalCoordinator, OnlyChordPortsAreUsed) {
  auto o = ChordalOptions(64);
  o.enable_trace = true;
  auto config = harness::BuildNetwork(o);
  sim::RuntimeOptions rt_opts;
  rt_opts.enable_trace = true;
  sim::Runtime rt(std::move(config),
                  proto::chordal::MakeChordalCoordinator(), rt_opts);
  rt.Run();
  topo::ChordalRing ring(64);
  for (const auto& rec : rt.trace().records()) {
    if (rec.kind != sim::TraceRecord::Kind::kSend) continue;
    EXPECT_TRUE(ring.IsChordDistance(rec.port))
        << "non-chord edge used: distance " << rec.port;
  }
}

TEST(ChordalCoordinator, RandomisedSubsetsAndDelays) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto o = ChordalOptions(32);
    o.seed = seed;
    o.delay = seed % 2 ? DelayKind::kRandom : DelayKind::kUnit;
    o.wakeup = WakeupKind::kRandomSubset;
    o.wakeup_count = 1 + static_cast<std::uint32_t>(seed % 31);
    o.wakeup_window = 2.0;
    o.identity = harness::IdentityKind::kRandomPermutation;
    RunAndCheck(proto::chordal::MakeChordalCoordinator(), o);
  }
}

TEST(ChordalCoordinator, StaggeredWakeupStillUnique) {
  auto o = ChordalOptions(64);
  o.wakeup = WakeupKind::kStaggeredChain;
  o.stagger_spacing = 0.9;
  RunAndCheck(proto::chordal::MakeChordalCoordinator(), o);
}

}  // namespace
}  // namespace celect
